// Resilience middleware for HistorySource stacks. Each wrapper is a
// HistorySource itself, so they compose in any order; Options.Build wires
// the canonical stack Cache → Obs → Limit → Retry → Timeout → base, which
// is what the production-scale deployments of the ROADMAP need to survive
// slow and flaky revision-history backends (§4's on-demand pulls become
// network calls there).

package source

import (
	"context"
	"hash/fnv"
	"sync/atomic"
	"time"

	"wiclean/internal/action"
	"wiclean/internal/obs"
	"wiclean/internal/obs/trace"
	"wiclean/internal/taxonomy"
)

// WithTimeout bounds every FetchType call to d. When composed inside
// WithRetry, each attempt gets a fresh deadline — a hung backend costs one
// attempt, not the whole fetch. A non-positive d returns src unchanged.
func WithTimeout(src HistorySource, d time.Duration) HistorySource {
	if d <= 0 {
		return src
	}
	return &timeoutSource{src: src, d: d}
}

type timeoutSource struct {
	src HistorySource
	d   time.Duration
}

// Registry returns the wrapped source's registry.
func (s *timeoutSource) Registry() *taxonomy.Registry { return s.src.Registry() }

// FetchType delegates with a per-call deadline.
func (s *timeoutSource) FetchType(ctx context.Context, t taxonomy.Type, w action.Window) ([]action.Action, error) {
	ctx, cancel := context.WithTimeout(ctx, s.d)
	defer cancel()
	return s.src.FetchType(ctx, t, w)
}

// WithLimit bounds the number of concurrent fetches to n with a semaphore.
// Algorithm 2 mines windows in parallel (§4.3) and every window pulls
// types on demand; the semaphore keeps that fan-out from overwhelming a
// dump file or a remote endpoint. Waiting honors ctx. A non-positive n
// returns src unchanged. The optional registry tracks in-flight fetches.
func WithLimit(src HistorySource, n int, reg *obs.Registry) HistorySource {
	if n <= 0 {
		return src
	}
	return &limitSource{src: src, sem: make(chan struct{}, n), obs: reg}
}

type limitSource struct {
	src HistorySource
	sem chan struct{}
	obs *obs.Registry
}

// Registry returns the wrapped source's registry.
func (s *limitSource) Registry() *taxonomy.Registry { return s.src.Registry() }

// FetchType acquires a semaphore slot (or gives up when ctx does) and
// delegates.
func (s *limitSource) FetchType(ctx context.Context, t taxonomy.Type, w action.Window) ([]action.Action, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	g := s.obs.Gauge(obs.SourceInflight)
	g.Add(1)
	defer func() {
		g.Add(-1)
		<-s.sem
	}()
	return s.src.FetchType(ctx, t, w)
}

// RetryPolicy configures WithRetry: capped exponential backoff with
// deterministic jitter and an optional global retry budget. The zero
// value is not useful; start from DefaultRetryPolicy.
type RetryPolicy struct {
	// MaxAttempts is the per-fetch attempt allowance including the first
	// try (<=0 means DefaultRetryPolicy's value).
	MaxAttempts int

	// BaseDelay is the backoff before the first retry; attempt k waits
	// BaseDelay·2^(k-1), capped at MaxDelay.
	BaseDelay time.Duration

	// MaxDelay caps the exponential growth (<=0 means no cap).
	MaxDelay time.Duration

	// Jitter spreads each delay by ±Jitter fraction, derived
	// deterministically from the (type, attempt) pair so runs are
	// reproducible; 0 disables jitter.
	Jitter float64

	// Budget, when positive, bounds the total number of retries across
	// every fetch of the wrapped source: once spent, failing fetches give
	// up immediately. This is the circuit-breaking knob — a dying backend
	// fails the run fast instead of multiplying per-fetch backoff across
	// thousands of type pulls.
	Budget int64

	// Obs receives retry and give-up counters; nil is a no-op.
	Obs *obs.Registry

	// Sleep replaces the backoff wait in tests; nil uses a real timer
	// that aborts when ctx does.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy returns the stack's standard policy: 4 attempts,
// 50 ms base delay doubling to a 2 s cap, ±20% jitter, unlimited budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      0.2,
	}
}

// WithRetry wraps src so transient fetch failures are retried under p.
// Fetches that still fail — or that fail permanently (IsPermanent), or
// whose context is done — surface as a *FetchError naming the type,
// window and attempt count; budget- and allowance-exhausted errors also
// wrap ErrExhausted. Success after masking transient faults returns
// exactly the underlying result, which is what makes fault-injected
// mining byte-identical to a fault-free run.
func WithRetry(src HistorySource, p RetryPolicy) HistorySource {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy().MaxAttempts
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return &retrySource{src: src, p: p}
}

type retrySource struct {
	src  HistorySource
	p    RetryPolicy
	used atomic.Int64 // retries consumed from the global budget
}

// Registry returns the wrapped source's registry.
func (s *retrySource) Registry() *taxonomy.Registry { return s.src.Registry() }

// FetchType runs the retry loop of the policy. The whole loop — every
// attempt and every backoff wait — runs under one "source.fetch" trace
// span (when ctx carries a trace), whose attempts/retries attributes and
// error status answer "where did this slow mine wait" per fetch.
func (s *retrySource) FetchType(ctx context.Context, t taxonomy.Type, w action.Window) ([]action.Action, error) {
	ctx, sp := trace.StartSpan(ctx, "source.fetch")
	sp.SetAttr("type", string(t))
	var last error
	attempts := 0
	exhausted := false
	for attempts < s.p.MaxAttempts {
		if attempts > 0 {
			if s.p.Budget > 0 && s.used.Add(1) > s.p.Budget {
				exhausted = true
				break
			}
			s.p.Obs.Counter(obs.SourceRetries).Inc()
			if err := s.p.Sleep(ctx, s.backoff(t, attempts)); err != nil {
				last = err
				break
			}
		}
		out, err := s.src.FetchType(ctx, t, w)
		attempts++
		if err == nil {
			sp.SetAttrInt("attempts", int64(attempts))
			sp.SetAttrInt("retries", int64(attempts-1))
			sp.End()
			return out, nil
		}
		last = err
		if IsPermanent(err) || ctx.Err() != nil {
			break
		}
	}
	s.p.Obs.Counter(obs.SourceGiveUps).Inc()
	err := last
	if exhausted || (attempts >= s.p.MaxAttempts && !IsPermanent(last)) {
		err = joinExhausted(last)
	}
	ferr := &FetchError{Type: t, Window: w, Attempts: attempts, Err: err}
	sp.SetAttrInt("attempts", int64(attempts))
	sp.Fail(ferr)
	sp.End()
	return nil, ferr
}

// joinExhausted pairs the last underlying error with ErrExhausted so both
// survive errors.Is checks.
func joinExhausted(last error) error {
	if last == nil {
		return ErrExhausted
	}
	return &exhaustedError{last: last}
}

// exhaustedError carries the last attempt's error while also matching
// ErrExhausted.
type exhaustedError struct{ last error }

// Error renders the exhaustion with its cause.
func (e *exhaustedError) Error() string { return ErrExhausted.Error() + ": " + e.last.Error() }

// Unwrap exposes both the sentinel and the cause.
func (e *exhaustedError) Unwrap() []error { return []error{ErrExhausted, e.last} }

// backoff computes the capped exponential delay for retry number k (k>=1)
// with deterministic jitter seeded by the type name.
func (s *retrySource) backoff(t taxonomy.Type, k int) time.Duration {
	return s.p.Backoff(string(t), k)
}

// Backoff returns the policy's delay before retry number k (k >= 1) of the
// operation identified by key: BaseDelay·2^(k−1) capped at MaxDelay, spread
// by the deterministic ±Jitter derived from (key, k). It is the schedule
// the retry middleware runs on, exported so other retrying clients — the
// distributed-mining coordinator's window dispatcher — share one backoff
// policy instead of growing a second, subtly different one.
func (p RetryPolicy) Backoff(key string, k int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 1; i < k; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		u := hashFraction(key, uint64(k)) // deterministic in (key, attempt)
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*u-1)))
	}
	return d
}

// SleepContext waits d or until ctx is done, whichever comes first — the
// wait primitive behind every backoff in the stack, exported for retrying
// clients outside this package. It honors RetryPolicy.Sleep semantics: a
// non-positive d returns immediately with ctx's error, if any.
func SleepContext(ctx context.Context, d time.Duration) error { return sleepCtx(ctx, d) }

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// hashFraction maps (s, n) to a deterministic uniform value in [0, 1).
func hashFraction(s string, n uint64) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64() ^ (n * 0x9e3779b97f4a7c15)
	// splitmix64 finalizer for good bit diffusion.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// WithObs instruments src: a counter and latency histogram per logical
// fetch and an error counter per failed one. Placed between the cache and
// the retry middleware, the histogram measures what a cache miss really
// costs (queueing, every retry, backoff) — the fetch-latency series the
// resilience benchmark reports percentiles of.
func WithObs(src HistorySource, reg *obs.Registry) HistorySource {
	if reg == nil {
		return src
	}
	return &obsSource{src: src, reg: reg}
}

type obsSource struct {
	src HistorySource
	reg *obs.Registry
}

// Registry returns the wrapped source's registry.
func (s *obsSource) Registry() *taxonomy.Registry { return s.src.Registry() }

// FetchType counts and times the delegated fetch. The latency
// observation carries the current trace ID (if any) as its bucket's
// exemplar, so a fetch-latency tail on /metrics points at one concrete
// trace.
func (s *obsSource) FetchType(ctx context.Context, t taxonomy.Type, w action.Window) ([]action.Action, error) {
	s.reg.Counter(obs.SourceFetches).Inc()
	start := time.Now()
	out, err := s.src.FetchType(ctx, t, w)
	s.reg.Histogram(obs.SourceFetchSeconds, obs.DurationBuckets).
		ObserveDurationWithExemplar(time.Since(start), trace.FromContext(ctx).TraceIDString())
	if err != nil {
		s.reg.Counter(obs.SourceFetchErrors).Inc()
	}
	return out, err
}
