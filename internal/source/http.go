package source

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"wiclean/internal/action"
	"wiclean/internal/dump"
	"wiclean/internal/mining"
	"wiclean/internal/obs/trace"
	"wiclean/internal/taxonomy"
)

// HTTP is the remote HistorySource: it fetches per-type histories from a
// MediaWiki-style endpoint serving the JSONL action format of
// internal/dump. This is the networked deployment shape the paper had to
// crawl around ("Due to the lack of an appropriate API, obtaining the
// Wikipedia data required crawling and parsing", §6.1) — and the backend
// every resilience middleware in this package exists for: a remote
// history service is slow, rate-limited and occasionally down. A
// wiclean-server exposes the matching endpoint at /history (see
// HistoryHandler), so one WiClean instance can mine off another's store.
type HTTP struct {
	base   string
	reg    *taxonomy.Registry
	client *http.Client
}

// NewHTTP returns a source fetching from base (e.g.
// "http://host:8754/history"), resolving entity names against reg. A nil
// client uses http.DefaultClient; per-fetch deadlines come from the
// context, i.e. from WithTimeout in the standard stack.
func NewHTTP(base string, reg *taxonomy.Registry, client *http.Client) *HTTP {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTP{base: base, reg: reg, client: client}
}

// Registry returns the entity registry responses are resolved against.
func (s *HTTP) Registry() *taxonomy.Registry { return s.reg }

// FetchType GETs base?type=t&start=S&end=E and decodes the JSONL action
// records. 4xx statuses are permanent errors (retrying an unknown type
// cannot help); transport failures and 5xx statuses are transient.
func (s *HTTP) FetchType(ctx context.Context, t taxonomy.Type, w action.Window) ([]action.Action, error) {
	q := url.Values{}
	q.Set("type", string(t))
	q.Set("start", strconv.FormatInt(int64(w.Start), 10))
	q.Set("end", strconv.FormatInt(int64(w.End), 10))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"?"+q.Encode(), nil)
	if err != nil {
		return nil, Permanent(fmt.Errorf("source: building request: %w", err))
	}
	// Propagate the trace across the process boundary: the remote
	// wiclean-server joins this trace ID, so a chained mine exports one
	// stitched trace spanning both processes.
	trace.Inject(ctx, req.Header)
	trace.FromContext(ctx).SetAttr("backend", "http")
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("source: fetching %q: %w", t, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("source: fetching %q: status %d: %s", t, resp.StatusCode, body)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, Permanent(err)
		}
		return nil, err
	}
	recs, err := dump.ReadActions(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("source: decoding %q: %w", t, err)
	}
	out := make([]action.Action, 0, len(recs))
	for _, rec := range recs {
		a, err := dump.ActionOf(rec, s.reg)
		if err != nil {
			continue // outside this client's entity universe
		}
		out = append(out, a)
	}
	action.SortByTime(out)
	return out, nil
}

// Span GETs base?span=1 — the remote store's full revision window, which
// the CLIs need before they can split a timeline they never hold locally.
func (s *HTTP) Span(ctx context.Context) (action.Window, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"?span=1", nil)
	if err != nil {
		return action.Window{}, Permanent(err)
	}
	trace.Inject(ctx, req.Header)
	resp, err := s.client.Do(req)
	if err != nil {
		return action.Window{}, fmt.Errorf("source: fetching span: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return action.Window{}, fmt.Errorf("source: fetching span: status %d", resp.StatusCode)
	}
	var sp spanPayload
	if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
		return action.Window{}, fmt.Errorf("source: decoding span: %w", err)
	}
	return action.Window{Start: action.Time(sp.Start), End: action.Time(sp.End)}, nil
}

// spanPayload is the JSON body of the span endpoint.
type spanPayload struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// historyStore is the read surface HistoryHandler serves; dump.History
// and the source Store both satisfy it (it is mining.Store minus
// AllActions).
type historyStore interface {
	Registry() *taxonomy.Registry
	ActionsOf(ids []taxonomy.EntityID, w action.Window) []action.Action
}

// HistoryHandler serves the remote end of the HTTP source over any
// revision store:
//
//	GET ?type=T&start=S&end=E  →  JSONL dump.ActionRecord stream
//	GET ?span=1                →  {"start": ..., "end": ...}
//
// Mounted at /history on the plugin server, it turns every wiclean-server
// into a revision-history backend other miners can fetch from — the
// paper's missing "publicly available structured revisions database"
// (§6.1), served from whatever store this instance was loaded with.
func HistoryHandler(store historyStore, span func() action.Window) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if q.Get("span") != "" {
			sp := span()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(spanPayload{Start: int64(sp.Start), End: int64(sp.End)})
			return
		}
		// Serve the fetch under the request's context: when the tracing
		// middleware put a span there and the store is context-rebindable
		// (source.Store), the store-side fetch spans join the caller's
		// trace — the receiving half of cross-process stitching.
		serving := store
		if cs, ok := store.(mining.ContextStore); ok {
			if st, ok := cs.WithContext(r.Context()).(historyStore); ok {
				serving = st
			}
		}
		trace.FromContext(r.Context()).SetAttr("history_type", q.Get("type"))
		reg := serving.Registry()
		t := taxonomy.Type(q.Get("type"))
		if t == "" || !reg.Taxonomy().Has(t) {
			http.Error(w, fmt.Sprintf("unknown type %q", t), http.StatusNotFound)
			return
		}
		win := AllTime
		if v := q.Get("start"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad start", http.StatusBadRequest)
				return
			}
			win.Start = action.Time(n)
		}
		if v := q.Get("end"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad end", http.StatusBadRequest)
				return
			}
			win.End = action.Time(n)
		}
		as := serving.ActionsOf(reg.EntitiesOf(t), win)
		recs := make([]dump.ActionRecord, len(as))
		for i, a := range as {
			recs[i] = dump.RecordOf(a, reg)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = dump.WriteActions(w, recs)
	})
}
