package source

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"wiclean/internal/action"
	"wiclean/internal/obs"
	"wiclean/internal/taxonomy"
)

// countingSource wraps a source and counts backend fetches per type.
type countingSource struct {
	src HistorySource

	mu    sync.Mutex
	calls map[taxonomy.Type]int
}

func newCounting(src HistorySource) *countingSource {
	return &countingSource{src: src, calls: map[taxonomy.Type]int{}}
}

func (s *countingSource) Registry() *taxonomy.Registry { return s.src.Registry() }

func (s *countingSource) FetchType(ctx context.Context, t taxonomy.Type, w action.Window) ([]action.Action, error) {
	s.mu.Lock()
	s.calls[t]++
	s.mu.Unlock()
	return s.src.FetchType(ctx, t, w)
}

func (s *countingSource) count(t taxonomy.Type) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[t]
}

// assertCacheObs checks that the cache's own accounting and the obs
// counters tell the same story — the invariant the ops dashboards rely on.
func assertCacheObs(t *testing.T, c *Cache, reg *obs.Registry) {
	t.Helper()
	st := c.Stats()
	snap := reg.Snapshot()
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{obs.SourceCacheHits, snap.Counters[obs.SourceCacheHits], st.Hits},
		{obs.SourceCacheMisses, snap.Counters[obs.SourceCacheMisses], st.Misses},
		{obs.SourceCacheCoalesced, snap.Counters[obs.SourceCacheCoalesced], st.Coalesced},
		{obs.SourceCacheEvictions, snap.Counters[obs.SourceCacheEvictions], st.Evictions},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Fatalf("%s = %d, cache stats say %d", ch.name, ch.got, ch.want)
		}
	}
}

func TestCacheHitsAcrossWindows(t *testing.T) {
	w := newTestWorld(t)
	backend := newCounting(NewMemory(w.hist))
	reg := obs.NewRegistry()
	c := NewCache(backend, 1<<20, reg)
	ctx := context.Background()

	first, err := c.FetchType(ctx, "FootballPlayer", action.Window{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	// A different (wider) window must be served from the same cached full
	// history — this is what makes Algorithm 2's window doubling cheap.
	second, err := c.FetchType(ctx, "FootballPlayer", w.span)
	if err != nil {
		t.Fatal(err)
	}
	if got := backend.count("FootballPlayer"); got != 1 {
		t.Fatalf("backend fetched %d times, want 1", got)
	}
	if len(second) < len(first) {
		t.Fatalf("wider window returned fewer actions (%d < %d)", len(second), len(first))
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	assertCacheObs(t, c, reg)
}

func TestCacheWindowFilterAndImmutability(t *testing.T) {
	w := newTestWorld(t)
	c := NewCache(NewMemory(w.hist), 1<<20, nil)
	ctx := context.Background()

	narrow := action.Window{Start: 10, End: 14}
	got, err := c.FetchType(ctx, "FootballPlayer", narrow)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if !narrow.Contains(a.T) {
			t.Fatalf("action at %d outside requested window %v", a.T, narrow)
		}
	}
	// Mutate the returned slice; a later fetch must not see it.
	for i := range got {
		got[i].T = -999
	}
	again, err := c.FetchType(ctx, "FootballPlayer", narrow)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range again {
		if a.T == -999 {
			t.Fatal("cache handed out a shared mutable slice")
		}
	}
}

func TestCacheEviction(t *testing.T) {
	w := newTestWorld(t)
	backend := newCounting(NewMemory(w.hist))
	reg := obs.NewRegistry()
	// Players source 6 actions, clubs 6 (the squad edits); a capacity of 8
	// holds one type but never both.
	c := NewCache(backend, 8, reg)
	ctx := context.Background()

	if _, err := c.FetchType(ctx, "FootballPlayer", w.span); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchType(ctx, "FootballClub", w.span); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchType(ctx, "FootballPlayer", w.span); err != nil {
		t.Fatal(err)
	}
	if got := backend.count("FootballPlayer"); got != 2 {
		t.Fatalf("player history fetched %d times, want 2 (evicted between)", got)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", st)
	}
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 3 misses / 0 hits", st)
	}
	assertCacheObs(t, c, reg)
}

func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	w := newTestWorld(t)
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	backend := newCounting(&stubSource{reg: w.reg, fetch: func(ctx context.Context, tt taxonomy.Type, win action.Window) ([]action.Action, error) {
		entered <- struct{}{}
		<-gate
		return w.hist.ActionsOf(w.players, win), nil
	}})
	reg := obs.NewRegistry()
	c := NewCache(backend, 1<<20, reg)
	ctx := context.Background()

	var wg sync.WaitGroup
	results := make([]int, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		as, err := c.FetchType(ctx, "FootballPlayer", w.span)
		if err != nil {
			t.Error(err)
		}
		results[0] = len(as)
	}()
	<-entered // the first fetch holds the backend
	wg.Add(1)
	go func() {
		defer wg.Done()
		as, err := c.FetchType(ctx, "FootballPlayer", w.span)
		if err != nil {
			t.Error(err)
		}
		results[1] = len(as)
	}()
	// Wait for the second caller to register as coalesced, then release.
	for c.Stats().Coalesced == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if got := backend.count("FootballPlayer"); got != 1 {
		t.Fatalf("backend fetched %d times, want 1 (coalesced)", got)
	}
	if results[0] != results[1] || results[0] == 0 {
		t.Fatalf("coalesced results differ: %v", results)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 coalesced", st)
	}
	assertCacheObs(t, c, reg)
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	w := newTestWorld(t)
	backend := newCounting(WithFaults(NewMemory(w.hist), Faults{FailFirst: 1}, nil))
	c := NewCache(backend, 1<<20, nil)
	ctx := context.Background()

	if _, err := c.FetchType(ctx, "FootballPlayer", w.span); err == nil {
		t.Fatal("first fetch should fail")
	}
	as, err := c.FetchType(ctx, "FootballPlayer", w.span)
	if err != nil {
		t.Fatalf("second fetch should recover: %v", err)
	}
	if len(as) == 0 {
		t.Fatal("second fetch returned no actions")
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v: a failed fetch must stay a miss", st)
	}
}

// TestCacheAccountingUnderConcurrentLoad is the cost-accounting audit
// regression test: a storm of concurrent fetches over a capacity that
// holds only one of two types — so coalesced fetches, inserts and
// evictions race constantly — must leave the books exactly balanced.
// The invariants pinned here:
//
//   - every admission is counted exactly once (hits + misses +
//     coalesced == calls), so a coalesced fetch never double-counts;
//   - a coalesced fetch never double-inserts: with an error-free
//     backend, misses − residents == evictions, i.e. every insert is
//     accounted to exactly one miss and every removal to one eviction;
//   - the resident size equals the sum of resident entry costs, stays
//     within capacity, and matches the size gauge;
//   - the cache's own stats and the obs counters tell the same story.
func TestCacheAccountingUnderConcurrentLoad(t *testing.T) {
	w := newTestWorld(t)
	backend := newCounting(NewMemory(w.hist))
	reg := obs.NewRegistry()
	// Capacity 8 holds one type's six actions but never both types.
	c := NewCache(backend, 8, reg)
	ctx := context.Background()

	const goroutines = 8
	const iters = 50
	types := []taxonomy.Type{"FootballPlayer", "FootballClub"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tt := types[(g+i)%len(types)]
				as, err := c.FetchType(ctx, tt, w.span)
				if err != nil {
					t.Errorf("fetch %s: %v", tt, err)
					return
				}
				if len(as) == 0 {
					t.Errorf("fetch %s returned no actions", tt)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if total := st.Hits + st.Misses + st.Coalesced; total != goroutines*iters {
		t.Fatalf("admissions %d (hits %d + misses %d + coalesced %d) != calls %d — an admission was double- or un-counted",
			total, st.Hits, st.Misses, st.Coalesced, goroutines*iters)
	}
	if fetched := int64(backend.count("FootballPlayer") + backend.count("FootballClub")); fetched != st.Misses {
		t.Fatalf("backend fetched %d times but stats count %d misses", fetched, st.Misses)
	}

	c.mu.Lock()
	size, resident, lruLen := c.size, len(c.entries), c.lru.Len()
	var costSum int
	for _, el := range c.entries {
		costSum += entryCost(el.Value.(*cacheEntry).actions)
	}
	c.mu.Unlock()
	if resident != lruLen {
		t.Fatalf("entry map holds %d types, LRU list %d — the two stores diverged", resident, lruLen)
	}
	if size != costSum {
		t.Fatalf("size %d != sum of resident entry costs %d — a racing insert double-counted", size, costSum)
	}
	if size > 8 {
		t.Fatalf("size %d exceeds capacity 8", size)
	}
	// Error-free backend: every miss inserted exactly once, so whatever
	// is not resident anymore must have been evicted — and counted.
	if got, want := st.Evictions, st.Misses-int64(resident); got != want {
		t.Fatalf("evictions %d != misses %d − residents %d: eviction stats do not match actual evictions",
			got, st.Misses, resident)
	}
	snap := reg.Snapshot()
	if gauge := snap.Gauges[obs.SourceCacheActions]; gauge != float64(size) {
		t.Fatalf("size gauge %v != size %d", gauge, size)
	}
	if gauge := snap.Gauges[obs.SourceCacheTypes]; gauge != float64(resident) {
		t.Fatalf("types gauge %v != resident %d", gauge, resident)
	}
	assertCacheObs(t, c, reg)
}
