// Package source is WiClean's pluggable revision-history access layer.
//
// The paper's Optimization (b) (§4) builds the edits graph incrementally,
// pulling revision histories on demand and "only for the types of entities
// already appearing in frequent patterns". This package abstracts where
// those per-type histories come from — an in-memory store, a lazy JSONL
// dump on disk, or a remote MediaWiki-style HTTP endpoint — behind one
// interface, HistorySource, and wraps every implementation in a resilience
// middleware stack (per-attempt timeouts, capped exponential backoff with
// a retry budget, a bounded-concurrency semaphore, and a size-bounded LRU
// cache of type histories) so the miner survives slow and flaky backends.
//
// The Store adapter at the end of the stack implements mining.Store, which
// is how Algorithms 1–3 consume the layer without knowing its shape. A
// deterministic fault-injection source (Faults) exists for tests and for
// the resilience benchmark: with transient faults below the retry budget,
// mining output is byte-identical to a fault-free run.
package source

import (
	"context"
	"errors"
	"fmt"
	"math"

	"wiclean/internal/action"
	"wiclean/internal/dump"
	"wiclean/internal/taxonomy"
)

// HistorySource fetches the revision history of one entity type within a
// time window — the type-granular access path of the paper's on-demand
// graph construction (§4, Optimization (b)). FetchType returns every
// action whose source entity has a most specific type t' ≤ t and whose
// timestamp falls inside w, sorted by time. Implementations must be safe
// for concurrent use (Algorithm 2 mines windows in parallel) and callers
// must treat the returned slice as immutable: caching middleware may hand
// the same backing array to many windows.
type HistorySource interface {
	// Registry returns the entity registry the histories are typed
	// against (the entities(t) index of Definition 3.2).
	Registry() *taxonomy.Registry

	// FetchType pulls the revision histories of entities(t) restricted
	// to w. Errors are either transient (worth retrying) or wrapped with
	// Permanent; resilient stacks retry only the former.
	FetchType(ctx context.Context, t taxonomy.Type, w action.Window) ([]action.Action, error)
}

// AllTime is the window covering every representable timestamp. The LRU
// cache fetches whole type histories under this window and serves narrower
// requests by filtering, which is what lets Algorithm 2's refinement
// iterations (same types, doubled windows, §4.3) reuse earlier fetches.
var AllTime = action.Window{Start: math.MinInt64 / 4, End: math.MaxInt64 / 4}

// ErrExhausted marks a fetch that failed even after its full retry
// allowance; FetchError values returned by the retry middleware wrap it.
var ErrExhausted = errors.New("source: retry budget exhausted")

// FetchError is the typed error a resilient source surfaces when a fetch
// ultimately fails: it names the type and window being pulled and how many
// attempts were made, and wraps the last underlying error (plus
// ErrExhausted when the retry allowance ran out). The miner propagates it
// instead of returning a partially built edits graph.
type FetchError struct {
	Type     taxonomy.Type // the entity type being fetched
	Window   action.Window // the requested time window
	Attempts int           // total attempts made, including the first
	Err      error         // last underlying error, possibly joined with ErrExhausted
}

// Error renders the failure with its fetch coordinates.
func (e *FetchError) Error() string {
	return fmt.Sprintf("source: fetching type %q over %v failed after %d attempt(s): %v",
		e.Type, e.Window, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error chain to errors.Is / errors.As.
func (e *FetchError) Unwrap() error { return e.Err }

// permanentError marks an error that retrying cannot fix (an unknown type,
// a 4xx HTTP status, a corrupt dump record).
type permanentError struct{ err error }

// Error renders the wrapped error.
func (e *permanentError) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error.
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so that IsPermanent reports true: resilient stacks
// fail such fetches immediately instead of burning their retry budget.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent. Context cancellation and deadline expiry of the parent
// context also count: the caller is gone, retrying serves nobody.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Memory is the in-memory HistorySource over a fully materialized
// dump.History — the pre-PR access path, now one source among three. It is
// the zero-latency baseline the resilience middleware is tested against.
type Memory struct {
	h *dump.History
}

// NewMemory returns a source over the given in-memory history.
func NewMemory(h *dump.History) *Memory { return &Memory{h: h} }

// Registry returns the entity registry of the underlying history.
func (s *Memory) Registry() *taxonomy.Registry { return s.h.Registry() }

// FetchType returns the actions of entities(t) inside w straight from
// memory. It honors ctx cancellation before doing any work, so a canceled
// mining run aborts between pulls.
func (s *Memory) FetchType(ctx context.Context, t taxonomy.Type, w action.Window) ([]action.Action, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reg := s.h.Registry()
	if !reg.Taxonomy().Has(t) {
		return nil, Permanent(fmt.Errorf("source: unknown type %q", t))
	}
	return s.h.ActionsOf(reg.EntitiesOf(t), w), nil
}
