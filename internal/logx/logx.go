// Package logx is WiClean's structured-logging setup: log/slog with a
// JSON handler, wrapped so every record logged with a context carries
// the trace and span IDs of that context's current trace span. Log
// lines and trace exports then join on trace_id — grep a slow request's
// ID in the access log and the same ID finds its trace in the JSONL
// export or /debug/traces.
//
// The binaries construct one logger at startup (New) and pass it down;
// libraries keep reporting through obs/trace and error returns — only
// cmd/* and the HTTP server log.
package logx

import (
	"context"
	"io"
	"log/slog"

	"wiclean/internal/obs/trace"
)

// New returns a JSON logger writing to w at the given level, with
// trace/span-ID stamping from the log call's context.
func New(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(Handler(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})))
}

// Handler wraps any slog.Handler so records logged with a traced
// context gain trace_id and span_id attributes.
func Handler(inner slog.Handler) slog.Handler { return ctxHandler{inner: inner} }

// ctxHandler decorates records with the context's trace identity.
type ctxHandler struct {
	inner slog.Handler
}

// Enabled delegates to the wrapped handler.
func (h ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle stamps the context's trace and span IDs onto the record, then
// delegates.
func (h ctxHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sp := trace.FromContext(ctx); sp != nil {
		rec.AddAttrs(
			slog.String("trace_id", sp.TraceID().String()),
			slog.String("span_id", sp.SpanID().String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs keeps the wrapper around the derived handler.
func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup keeps the wrapper around the derived handler.
func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{inner: h.inner.WithGroup(name)}
}
