package model_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"wiclean/internal/action"
	"wiclean/internal/dump"
	"wiclean/internal/mining"
	"wiclean/internal/model"
	"wiclean/internal/taxonomy"
	"wiclean/internal/windows"
)

// fixture builds a small soccer-style world, mines it, and returns the
// pieces a model needs.
type fixture struct {
	reg  *taxonomy.Registry
	span action.Window
	cfg  windows.Config
	out  *windows.Outcome
	prov model.Provenance
}

func mineFixture(t *testing.T) *fixture {
	t.Helper()
	x := taxonomy.New()
	x.AddChain("Person", "Athlete", "FootballPlayer")
	x.AddChain("Organisation", "FootballClub")
	reg := taxonomy.NewRegistry(x)
	store := dump.NewHistory(reg)
	var players, clubs []taxonomy.EntityID
	for i := 0; i < 6; i++ {
		players = append(players, reg.MustAdd(fmt.Sprintf("P%02d", i), "FootballPlayer"))
	}
	for i := 0; i < 12; i++ {
		clubs = append(clubs, reg.MustAdd(fmt.Sprintf("C%02d", i), "FootballClub"))
	}
	span := action.Window{Start: 0, End: 8 * action.Week}
	for i := 0; i < 5; i++ {
		ts := action.Week + action.Time(i)*action.Hour
		store.AddActions(
			action.Action{Op: action.Add, Edge: action.Edge{Src: players[i], Label: "current_club", Dst: clubs[2*i+1]}, T: ts},
			action.Action{Op: action.Remove, Edge: action.Edge{Src: players[i], Label: "current_club", Dst: clubs[2*i]}, T: ts + 1},
			action.Action{Op: action.Add, Edge: action.Edge{Src: clubs[2*i+1], Label: "squad", Dst: players[i]}, T: ts + 2},
			action.Action{Op: action.Remove, Edge: action.Edge{Src: clubs[2*i], Label: "squad", Dst: players[i]}, T: ts + 3},
		)
	}
	cfg := windows.Defaults()
	cfg.MinWindow = 2 * action.Week
	cfg.MaxWindow = 8 * action.Week
	cfg.Mining = mining.PM(0.7)
	cfg.Mining.MaxAbstraction = 0
	cfg.Workers = 2
	out, err := windows.Run(store, players, "FootballPlayer", span, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Discovered) == 0 {
		t.Fatal("fixture mined no patterns")
	}
	prov, err := model.Fingerprint(reg, span, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{reg: reg, span: span, cfg: cfg, out: out, prov: prov}
}

func TestRoundTripByteIdentical(t *testing.T) {
	fx := mineFixture(t)
	f := model.Snapshot(fx.out, fx.reg, fx.prov)

	var first bytes.Buffer
	if err := model.Write(&first, f); err != nil {
		t.Fatal(err)
	}
	loaded, err := model.Read(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := model.Write(&second, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("save → load → save is not byte-identical")
	}
}

func TestRoundTripOutcome(t *testing.T) {
	fx := mineFixture(t)
	f := model.Snapshot(fx.out, fx.reg, fx.prov)
	var buf bytes.Buffer
	if err := model.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	loaded, err := model.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := loaded.Outcome()
	if back.SeedType != fx.out.SeedType || back.Span != fx.out.Span {
		t.Error("outcome metadata lost")
	}
	if back.Width != fx.out.Width || back.Tau != fx.out.Tau {
		t.Error("converged setting lost")
	}
	if len(back.Discovered) != len(fx.out.Discovered) {
		t.Fatalf("discovered = %d, want %d", len(back.Discovered), len(fx.out.Discovered))
	}
	for i := range back.Discovered {
		g, w := back.Discovered[i], fx.out.Discovered[i]
		if !g.Pattern.Equal(w.Pattern) || g.Frequency != w.Frequency || g.Width != w.Width {
			t.Fatalf("discovered pattern %d lost in round trip", i)
		}
	}
	if len(back.Windows) != len(fx.out.Windows) {
		t.Fatalf("windows = %d, want %d", len(back.Windows), len(fx.out.Windows))
	}
	for i := range back.Windows {
		if got, want := len(back.Windows[i].Relative), len(fx.out.Windows[i].Relative); got != want {
			t.Fatalf("window %d relative groups = %d, want %d", i, got, want)
		}
	}
	tax, err := loaded.Taxonomy()
	if err != nil {
		t.Fatal(err)
	}
	if !tax.IsA("FootballPlayer", "Person") {
		t.Error("taxonomy snapshot lost the Person chain")
	}
}

func TestVerifyDetectsStaleness(t *testing.T) {
	fx := mineFixture(t)
	f := model.Snapshot(fx.out, fx.reg, fx.prov)
	if err := f.Verify(fx.prov); err != nil {
		t.Fatalf("fresh model rejected: %v", err)
	}

	// Different span → different fingerprint.
	other, err := model.Fingerprint(fx.reg, action.Window{Start: 0, End: 9 * action.Week}, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = f.Verify(other)
	var stale *model.StaleError
	if !errors.As(err, &stale) {
		t.Fatalf("span drift: err = %v, want *StaleError", err)
	}
	if !strings.Contains(stale.Error(), "stale model") {
		t.Errorf("StaleError message uninformative: %v", stale)
	}

	// A semantic config change also invalidates; a perf-only change must not.
	semantic := fx.cfg
	semantic.InitialTau = 0.5
	semProv, err := model.Fingerprint(fx.reg, fx.span, semantic)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verify(semProv) == nil {
		t.Error("semantic config drift should be stale")
	}
	perf := fx.cfg
	perf.Workers = 7
	perf.JoinWorkers = 3
	perfProv, err := model.Fingerprint(fx.reg, fx.span, perf)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(perfProv); err != nil {
		t.Errorf("perf-only config change should not be stale: %v", err)
	}

	// A changed universe invalidates.
	fx.reg.MustAdd("NewPlayer", "FootballPlayer")
	grown, err := model.Fingerprint(fx.reg, fx.span, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verify(grown) == nil {
		t.Error("universe drift should be stale")
	}
}

func TestReadRejections(t *testing.T) {
	fx := mineFixture(t)
	good := model.Snapshot(fx.out, fx.reg, fx.prov)

	encode := func(mutate func(*model.File)) string {
		f := *good
		mutate(&f)
		var buf bytes.Buffer
		if err := model.Write(&buf, &f); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	t.Run("not-a-model", func(t *testing.T) {
		_, err := model.Read(strings.NewReader(encode(func(f *model.File) { f.Format = "something-else" })))
		if !errors.Is(err, model.ErrNotModel) {
			t.Fatalf("err = %v, want ErrNotModel", err)
		}
	})
	t.Run("future-version", func(t *testing.T) {
		_, err := model.Read(strings.NewReader(encode(func(f *model.File) { f.Version = model.Version + 1 })))
		if err == nil || errors.Is(err, model.ErrNotModel) {
			t.Fatalf("err = %v, want a version error", err)
		}
	})
	t.Run("bad-json", func(t *testing.T) {
		if _, err := model.Read(strings.NewReader("{nope")); err == nil {
			t.Fatal("malformed JSON should error")
		}
	})
	t.Run("canonical-drift", func(t *testing.T) {
		_, err := model.Read(strings.NewReader(encode(func(f *model.File) {
			f.Patterns = append([]model.PatternRecord(nil), f.Patterns...)
			f.Patterns[0].Canonical = "corrupted"
		})))
		if err == nil || !strings.Contains(err.Error(), "canonical") {
			t.Fatalf("err = %v, want canonical mismatch", err)
		}
	})
	t.Run("empty-span", func(t *testing.T) {
		_, err := model.Read(strings.NewReader(encode(func(f *model.File) { f.Span = action.Window{} })))
		if err == nil {
			t.Fatal("empty span should error")
		}
	})
}

func TestSaveLoadFile(t *testing.T) {
	fx := mineFixture(t)
	f := model.Snapshot(fx.out, fx.reg, fx.prov)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.Save(path, f, nil); err != nil {
		t.Fatal(err)
	}
	loaded, err := model.Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Verify(fx.prov); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Load(filepath.Join(t.TempDir(), "missing.json"), nil); err == nil {
		t.Error("missing file should error")
	}
}

func TestFileCheckpointer(t *testing.T) {
	fx := mineFixture(t)
	path := filepath.Join(t.TempDir(), "mine.ckpt")
	cp := model.NewCheckpointer(path, fx.prov, nil)

	// No checkpoint yet: (nil, nil).
	st, err := cp.Load()
	if err != nil || st != nil {
		t.Fatalf("empty load = %v, %v; want nil, nil", st, err)
	}

	want := &windows.CheckpointState{
		Step:       3,
		Width:      4 * action.Week,
		Tau:        0.56,
		WidenNext:  true,
		NoProgress: 1,
		Discovered: fx.out.Discovered,
	}
	if err := cp.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := cp.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != want.Step || got.Width != want.Width || got.Tau != want.Tau ||
		got.WidenNext != want.WidenNext || got.NoProgress != want.NoProgress {
		t.Fatalf("state lost in round trip: %+v", got)
	}
	if len(got.Discovered) != len(want.Discovered) {
		t.Fatalf("discovered = %d, want %d", len(got.Discovered), len(want.Discovered))
	}

	// A checkpointer with drifted provenance refuses the resume.
	other, err := model.Fingerprint(fx.reg, action.Window{Start: 0, End: 9 * action.Week}, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	var stale *model.StaleError
	if _, err := model.NewCheckpointer(path, other, nil).Load(); !errors.As(err, &stale) {
		t.Fatalf("stale resume: err = %v, want *StaleError", err)
	}

	// Clear removes the file; clearing again is fine.
	if err := cp.Clear(); err != nil {
		t.Fatal(err)
	}
	if st, err := cp.Load(); err != nil || st != nil {
		t.Fatalf("load after clear = %v, %v; want nil, nil", st, err)
	}
	if err := cp.Clear(); err != nil {
		t.Fatal(err)
	}
}
