package model

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"wiclean/internal/obs"
	"wiclean/internal/windows"
)

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, so a crash mid-write never leaves a truncated
// model or checkpoint behind — readers see the old file or the new one.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Save atomically writes the model to path, reporting size and duration
// into reg (nil-safe).
func Save(path string, f *File, reg *obs.Registry) error {
	start := time.Now() //wiclean:allow-nondet obs save-latency histogram only; the encoding is deterministic
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		return err
	}
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return fmt.Errorf("model: saving %s: %w", path, err)
	}
	reg.Counter(obs.ModelSaves).Inc()
	reg.Counter(obs.ModelSaveBytes).Add(int64(buf.Len()))
	reg.Gauge(obs.ModelPatterns).Set(float64(len(f.Patterns)))
	//wiclean:allow-nondet obs save-latency histogram only
	reg.Histogram(obs.ModelSaveSeconds, obs.DurationBuckets).ObserveDuration(time.Since(start))
	return nil
}

// Load reads and validates the model at path, reporting size and duration
// into reg (nil-safe).
func Load(path string, reg *obs.Registry) (*File, error) {
	start := time.Now() //wiclean:allow-nondet obs load-latency histogram only; the loaded model is what the file says
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("model: loading %s: %w", path, err)
	}
	f, err := Read(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("model: loading %s: %w", path, err)
	}
	reg.Counter(obs.ModelLoads).Inc()
	reg.Counter(obs.ModelLoadBytes).Add(int64(len(data)))
	reg.Gauge(obs.ModelPatterns).Set(float64(len(f.Patterns)))
	//wiclean:allow-nondet obs load-latency histogram only
	reg.Histogram(obs.ModelLoadSeconds, obs.DurationBuckets).ObserveDuration(time.Since(start))
	return f, nil
}

// CheckpointFormat is the format name of refinement-checkpoint files.
const CheckpointFormat = "wiclean-checkpoint"

// checkpointFile is the on-disk envelope around a refinement state: the
// same versioned, provenance-guarded framing as model files, so a
// checkpoint recorded against different data or settings is detected
// instead of resumed.
type checkpointFile struct {
	Format     string                   `json:"format"`
	Version    int                      `json:"version"`
	Provenance Provenance               `json:"provenance"`
	State      *windows.CheckpointState `json:"state"`
}

// FileCheckpointer persists Algorithm 2 refinement state to one file,
// implementing windows.Checkpointer. Writes are atomic; Load verifies the
// format version and the provenance fingerprint before resuming.
type FileCheckpointer struct {
	path string
	prov Provenance
	obs  *obs.Registry
}

// NewCheckpointer returns a checkpointer writing to path, guarding resumes
// with the given provenance. reg (nil-safe) receives save counts, bytes
// and durations.
func NewCheckpointer(path string, prov Provenance, reg *obs.Registry) *FileCheckpointer {
	return &FileCheckpointer{path: path, prov: prov, obs: reg}
}

// Save atomically persists the state.
func (c *FileCheckpointer) Save(st *windows.CheckpointState) error {
	start := time.Now() //wiclean:allow-nondet obs checkpoint-latency histogram only; the envelope is deterministic
	env := checkpointFile{Format: CheckpointFormat, Version: Version, Provenance: c.prov, State: st}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&env); err != nil {
		return fmt.Errorf("model: encoding checkpoint: %w", err)
	}
	if err := writeFileAtomic(c.path, buf.Bytes()); err != nil {
		return fmt.Errorf("model: saving checkpoint %s: %w", c.path, err)
	}
	c.obs.Counter(obs.CheckpointSaves).Inc()
	c.obs.Counter(obs.CheckpointBytes).Add(int64(buf.Len()))
	//wiclean:allow-nondet obs checkpoint-latency histogram only
	c.obs.Histogram(obs.CheckpointSeconds, obs.DurationBuckets).ObserveDuration(time.Since(start))
	return nil
}

// Load returns the persisted state, (nil, nil) when no checkpoint exists,
// or an error — a *StaleError when the checkpoint's provenance does not
// match this checkpointer's.
func (c *FileCheckpointer) Load() (*windows.CheckpointState, error) {
	data, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("model: reading checkpoint %s: %w", c.path, err)
	}
	var env checkpointFile
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("model: decoding checkpoint %s: %w", c.path, err)
	}
	if env.Format != CheckpointFormat {
		return nil, fmt.Errorf("%w: checkpoint format %q", ErrNotModel, env.Format)
	}
	if env.Version <= 0 || env.Version > Version {
		return nil, fmt.Errorf("model: unsupported checkpoint version %d (supported: 1..%d)", env.Version, Version)
	}
	if !c.prov.Matches(env.Provenance) {
		return nil, &StaleError{Want: c.prov, Got: env.Provenance}
	}
	if env.State == nil {
		return nil, fmt.Errorf("model: checkpoint %s holds no state", c.path)
	}
	for i, d := range env.State.Discovered {
		if err := d.Pattern.Validate(); err != nil {
			return nil, fmt.Errorf("model: checkpoint %s pattern %d: %w", c.path, i, err)
		}
	}
	return env.State, nil
}

// Clear removes the checkpoint file; a missing file is not an error.
func (c *FileCheckpointer) Clear() error {
	if err := os.Remove(c.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("model: clearing checkpoint %s: %w", c.path, err)
	}
	return nil
}
