// Package model implements the persistent pattern-model store: a
// versioned, self-describing on-disk serialization of a mining outcome
// (Algorithm 2's converged patterns, windows and thresholds) plus the
// refinement checkpoints that let an interrupted run resume. Mining is the
// expensive offline stage ("very reasonable for offline computation",
// §6.2); the model file is the artifact the serving path (detection,
// assistance, the plug-in backend) warm-starts from without re-mining.
//
// Every file carries a format name, a format version and a provenance
// fingerprint of the inputs it was mined from — the universe (taxonomy +
// entities), the revision span and the semantic mining configuration — so
// a model that no longer matches its data or settings is detected at load
// time rather than silently served.
package model

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"wiclean/internal/action"
	"wiclean/internal/dump"
	"wiclean/internal/mining"
	"wiclean/internal/pattern"
	"wiclean/internal/taxonomy"
	"wiclean/internal/windows"
)

// Format is the self-describing format name stored in every model file.
const Format = "wiclean-model"

// Version is the current model format version. Readers reject newer
// versions (forward compatibility is not promised); older versions are
// upgraded in place as the format evolves.
const Version = 1

// ErrNotModel reports that a file is not a wiclean model at all (wrong or
// missing format name) — distinct from a malformed or stale model, so
// callers can fall back to legacy readers.
var ErrNotModel = errors.New("model: not a wiclean model file")

// StaleError reports a provenance mismatch: the model was mined from
// different inputs (universe, span or semantic configuration) than the
// ones it is being loaded against.
type StaleError struct {
	Want Provenance // fingerprint of the current inputs
	Got  Provenance // fingerprint recorded in the file
}

// Error renders the mismatch with enough detail to diagnose which input
// drifted.
func (e *StaleError) Error() string {
	return fmt.Sprintf("model: stale model: provenance %s (universe %s, %d entities, span %v, config %q) does not match current inputs %s (universe %s, %d entities, span %v, config %q)",
		short(e.Got.Hash), short(e.Got.Universe), e.Got.Entities, e.Got.Span, e.Got.Config,
		short(e.Want.Hash), short(e.Want.Universe), e.Want.Entities, e.Want.Span, e.Want.Config)
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// Provenance fingerprints the inputs of a mining run. Hash covers every
// other field, so two Provenance values are interchangeable iff their
// hashes are equal.
type Provenance struct {
	// Universe is the sha256 (hex) of the registry's universe dump —
	// taxonomy edges parent-first, then entities in ID order — exactly the
	// bytes dump.WriteUniverse emits.
	Universe string `json:"universe"`
	Entities int    `json:"entities"`
	Types    int    `json:"types"`

	// Span is the revision span the model was mined over.
	Span action.Window `json:"span"`

	// Config is the canonical encoding of the semantic mining knobs (the
	// ones that change what is mined, not how fast): window bounds,
	// refinement policy, thresholds, abstraction and reduction settings.
	// Worker counts, join strategy and observability wiring are excluded —
	// results are byte-identical across those by construction.
	Config string `json:"config"`

	// Hash is the sha256 (hex) over the canonical encoding of the fields
	// above; equality of hashes defines model freshness.
	Hash string `json:"hash"`
}

// Fingerprint computes the provenance of mining the given registry over
// span with cfg.
func Fingerprint(reg *taxonomy.Registry, span action.Window, cfg windows.Config) (Provenance, error) {
	uh := sha256.New()
	if err := dump.WriteUniverse(uh, reg); err != nil {
		return Provenance{}, fmt.Errorf("model: hashing universe: %w", err)
	}
	p := Provenance{
		Universe: hex.EncodeToString(uh.Sum(nil)),
		Entities: reg.Len(),
		Types:    reg.Taxonomy().Len(),
		Span:     span,
		Config:   configDigest(cfg),
	}
	p.Hash = p.fingerprint()
	return p, nil
}

// configDigest canonically encodes the semantic configuration fields.
func configDigest(cfg windows.Config) string {
	m := cfg.Mining
	return fmt.Sprintf(
		"minw=%d maxw=%d tau0=%g taumin=%g wf=%g cut=%g steps=%d patience=%d skiprel=%t taurel=%g maxact=%d abs=%d inc=%t noreduce=%t",
		cfg.MinWindow, cfg.MaxWindow, cfg.InitialTau, cfg.MinTau,
		cfg.WindowFactor, cfg.TauCut, cfg.MaxSteps, cfg.Patience, cfg.SkipRelative,
		m.TauRel, m.MaxActions, m.MaxAbstraction, m.Incremental, m.NoReduce)
}

func (p Provenance) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%s", p.Universe, p.Entities, p.Types, p.Span.Start, p.Span.End, p.Config)
	return hex.EncodeToString(h.Sum(nil))
}

// Matches reports whether the two provenances fingerprint the same inputs.
func (p Provenance) Matches(o Provenance) bool { return p.Hash != "" && p.Hash == o.Hash }

// TypeRecord is one taxonomy edge of the model's type-hierarchy snapshot,
// listed parent-first so the tree replays in order.
type TypeRecord struct {
	Name   string `json:"name"`
	Parent string `json:"parent"`
}

// PatternRecord is one discovered pattern with its support evidence and
// the refinement setting it was (best) observed under. Canonical is the
// pattern's canonical form, stored redundantly so corruption or a drifted
// canonicalization is detected at load time.
type PatternRecord struct {
	Canonical   string          `json:"canonical"`
	Pattern     pattern.Pattern `json:"pattern"`
	Frequency   float64         `json:"frequency"`
	SourceCount int             `json:"source_count"`
	Window      action.Window   `json:"window"`
	Width       action.Time     `json:"width"`
	Tau         float64         `json:"tau"`
}

// ScoredRecord is one most-specific frequent pattern of a final window.
type ScoredRecord struct {
	Canonical   string          `json:"canonical"`
	Pattern     pattern.Pattern `json:"pattern"`
	Frequency   float64         `json:"frequency"`
	SourceCount int             `json:"source_count"`
}

// RelativeRecord is one relative frequent pattern (Definition 3.5) of a
// final window, keyed under its base pattern's canonical form.
type RelativeRecord struct {
	Base        pattern.Pattern `json:"base"`
	Pattern     pattern.Pattern `json:"pattern"`
	RelFreq     float64         `json:"rel_freq"`
	Frequency   float64         `json:"frequency"`
	SourceCount int             `json:"source_count"`
}

// WindowRecord is one final-iteration window with its most-specific
// frequent patterns and relative patterns.
type WindowRecord struct {
	Window   action.Window               `json:"window"`
	Patterns []ScoredRecord              `json:"patterns,omitempty"`
	Relative map[string][]RelativeRecord `json:"relative,omitempty"`
}

// File is the on-disk model: a versioned envelope around the serializable
// part of a windows.Outcome plus the taxonomy snapshot and provenance.
type File struct {
	Format     string     `json:"format"`
	Version    int        `json:"version"`
	Provenance Provenance `json:"provenance"`

	SeedType        taxonomy.Type `json:"seed_type"`
	SeedCount       int           `json:"seed_count"`
	Span            action.Window `json:"span"`
	Width           action.Time   `json:"width"`
	Tau             float64       `json:"tau"`
	RefinementSteps int           `json:"refinement_steps"`

	Types    []TypeRecord    `json:"taxonomy"`
	Patterns []PatternRecord `json:"patterns"`
	Windows  []WindowRecord  `json:"windows,omitempty"`
}

// Snapshot extracts the serializable part of a mining outcome into a model
// file stamped with the given provenance. Realization tables are not
// persisted — detection recomputes them from the store; everything the
// serving path needs (patterns with canonical forms, frequencies, relative
// patterns, the converged setting, the taxonomy) is.
func Snapshot(o *windows.Outcome, reg *taxonomy.Registry, prov Provenance) *File {
	f := &File{
		Format:          Format,
		Version:         Version,
		Provenance:      prov,
		SeedType:        o.SeedType,
		SeedCount:       len(o.Seeds),
		Span:            o.Span,
		Width:           o.Width,
		Tau:             o.Tau,
		RefinementSteps: o.RefinementSteps,
		Types:           taxonomySnapshot(reg.Taxonomy()),
	}
	f.Patterns = make([]PatternRecord, 0, len(o.Discovered))
	for _, d := range o.Discovered {
		f.Patterns = append(f.Patterns, PatternRecord{
			Canonical:   d.Pattern.Canonical(),
			Pattern:     d.Pattern,
			Frequency:   d.Frequency,
			SourceCount: d.SourceCount,
			Window:      d.Window,
			Width:       d.Width,
			Tau:         d.Tau,
		})
	}
	for _, wr := range o.Windows {
		rec := WindowRecord{Window: wr.Window}
		if wr.Result != nil {
			for _, sp := range wr.Result.Patterns {
				rec.Patterns = append(rec.Patterns, ScoredRecord{
					Canonical:   sp.Pattern.Canonical(),
					Pattern:     sp.Pattern,
					Frequency:   sp.Frequency,
					SourceCount: sp.SourceCount,
				})
			}
		}
		if len(wr.Relative) > 0 {
			rec.Relative = make(map[string][]RelativeRecord, len(wr.Relative))
			for key, rels := range wr.Relative {
				rs := make([]RelativeRecord, 0, len(rels))
				for _, r := range rels {
					rs = append(rs, RelativeRecord{
						Base:        r.Base,
						Pattern:     r.Pattern,
						RelFreq:     r.RelFreq,
						Frequency:   r.Frequency,
						SourceCount: r.SourceCount,
					})
				}
				rec.Relative[key] = rs
			}
		}
		f.Windows = append(f.Windows, rec)
	}
	return f
}

// taxonomySnapshot lists the taxonomy's edges BFS from the root, so every
// parent precedes its children and replay is a straight fold.
func taxonomySnapshot(tax *taxonomy.Taxonomy) []TypeRecord {
	var out []TypeRecord
	queue := []taxonomy.Type{taxonomy.Root}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		if t != taxonomy.Root {
			out = append(out, TypeRecord{Name: string(t), Parent: string(tax.Parent(t))})
		}
		queue = append(queue, tax.Children(t)...)
	}
	return out
}

// Taxonomy rebuilds the type hierarchy from the model's snapshot, making
// the file self-describing: index construction and pattern rendering work
// from the model alone, without the original universe.
func (f *File) Taxonomy() (*taxonomy.Taxonomy, error) {
	tax := taxonomy.New()
	for i, r := range f.Types {
		parent := taxonomy.Type(r.Parent)
		if parent == "" {
			parent = taxonomy.Root
		}
		if err := tax.Add(taxonomy.Type(r.Name), parent); err != nil {
			return nil, fmt.Errorf("model: taxonomy record %d: %w", i, err)
		}
	}
	return tax, nil
}

// Outcome rebuilds the serving-grade outcome: discovered patterns with the
// converged setting, plus the final windows with their (realization-free)
// mining results and relative patterns. Seeds and realization tables are
// not persisted; detection and assistance recompute against the store.
func (f *File) Outcome() *windows.Outcome {
	o := &windows.Outcome{
		SeedType:        f.SeedType,
		Span:            f.Span,
		Width:           f.Width,
		Tau:             f.Tau,
		RefinementSteps: f.RefinementSteps,
	}
	o.Discovered = make([]windows.DiscoveredPattern, 0, len(f.Patterns))
	for _, r := range f.Patterns {
		o.Discovered = append(o.Discovered, windows.DiscoveredPattern{
			Pattern:     r.Pattern,
			Frequency:   r.Frequency,
			SourceCount: r.SourceCount,
			Window:      r.Window,
			Width:       r.Width,
			Tau:         r.Tau,
		})
	}
	for _, wr := range f.Windows {
		res := &mining.Result{SeedType: f.SeedType, Window: wr.Window}
		for _, sr := range wr.Patterns {
			res.Patterns = append(res.Patterns, mining.ScoredPattern{
				Pattern:     sr.Pattern,
				Frequency:   sr.Frequency,
				SourceCount: sr.SourceCount,
			})
		}
		w := windows.WindowResult{Window: wr.Window, Result: res}
		if len(wr.Relative) > 0 {
			w.Relative = make(map[string][]mining.RelativePattern, len(wr.Relative))
			for key, rels := range wr.Relative {
				rs := make([]mining.RelativePattern, 0, len(rels))
				for _, r := range rels {
					rs = append(rs, mining.RelativePattern{
						Base:        r.Base,
						Pattern:     r.Pattern,
						RelFreq:     r.RelFreq,
						Frequency:   r.Frequency,
						SourceCount: r.SourceCount,
					})
				}
				w.Relative[key] = rs
			}
		}
		o.Windows = append(o.Windows, w)
	}
	return o
}

// Verify checks the model against the provenance of the inputs it is about
// to be served with; a mismatch returns a *StaleError.
func (f *File) Verify(current Provenance) error {
	if !current.Matches(f.Provenance) {
		return &StaleError{Want: current, Got: f.Provenance}
	}
	return nil
}

// Validate checks the envelope and every pattern's structure and stored
// canonical form. Read calls it; it is exported for models built in
// memory.
func (f *File) Validate() error {
	if f.Format != Format {
		return fmt.Errorf("%w: format %q", ErrNotModel, f.Format)
	}
	if f.Version <= 0 || f.Version > Version {
		return fmt.Errorf("model: unsupported format version %d (supported: 1..%d)", f.Version, Version)
	}
	if f.Span.Width() <= 0 {
		return fmt.Errorf("model: empty span %v", f.Span)
	}
	if _, err := f.Taxonomy(); err != nil {
		return err
	}
	check := func(ctx string, p pattern.Pattern, canonical string) error {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("model: %s: %w", ctx, err)
		}
		if canonical != "" && p.Canonical() != canonical {
			return fmt.Errorf("model: %s: stored canonical form %q does not match pattern %s (recomputed %q)",
				ctx, canonical, p, p.Canonical())
		}
		return nil
	}
	for i, r := range f.Patterns {
		if err := check(fmt.Sprintf("pattern %d", i), r.Pattern, r.Canonical); err != nil {
			return err
		}
		if r.Width <= 0 {
			return fmt.Errorf("model: pattern %d has width %d", i, r.Width)
		}
	}
	for wi, wr := range f.Windows {
		for i, sr := range wr.Patterns {
			if err := check(fmt.Sprintf("window %d pattern %d", wi, i), sr.Pattern, sr.Canonical); err != nil {
				return err
			}
		}
		for key, rels := range wr.Relative {
			for i, r := range rels {
				if err := check(fmt.Sprintf("window %d relative %q[%d]", wi, key, i), r.Pattern, ""); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Write serializes the model as indented JSON. The encoding is fully
// deterministic (struct fields in declaration order, map keys sorted), so
// save → load → save is byte-identical — the round-trip invariant the CI
// golden job asserts.
func Write(w io.Writer, f *File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("model: encoding: %w", err)
	}
	return nil
}

// Read parses and validates a model written by Write. A stream that is
// not a wiclean model at all fails with an error wrapping ErrNotModel, so
// callers can distinguish "wrong format" from "corrupt model".
func Read(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("model: decoding: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}
