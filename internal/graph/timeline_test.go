package graph

import (
	"testing"

	"wiclean/internal/action"
)

func transferActions() []action.Action {
	// Neymar (0): Barcelona (1) -> PSG (2), with a league (3) switch.
	return []action.Action{
		{Op: action.Remove, Edge: action.Edge{Src: 0, Label: "current_club", Dst: 1}, T: 100},
		{Op: action.Add, Edge: action.Edge{Src: 0, Label: "current_club", Dst: 2}, T: 110},
		{Op: action.Add, Edge: action.Edge{Src: 2, Label: "squad", Dst: 0}, T: 120},
		{Op: action.Remove, Edge: action.Edge{Src: 1, Label: "squad", Dst: 0}, T: 130},
		{Op: action.Add, Edge: action.Edge{Src: 0, Label: "in_league", Dst: 3}, T: 140},
	}
}

func TestTimelineInitialStateInferred(t *testing.T) {
	tl := NewTimeline(testRegistry(t), transferActions())
	init := tl.Initial()
	// First ops on (0,cc,1) and (1,squad,0) are removes: both pre-existed.
	if !init.HasEdge(action.Edge{Src: 0, Label: "current_club", Dst: 1}) {
		t.Error("old club link should pre-exist")
	}
	if !init.HasEdge(action.Edge{Src: 1, Label: "squad", Dst: 0}) {
		t.Error("old squad link should pre-exist")
	}
	if init.EdgeCount() != 2 {
		t.Errorf("initial edges = %d", init.EdgeCount())
	}
}

func TestTimelineAt(t *testing.T) {
	tl := NewTimeline(testRegistry(t), transferActions())
	// Before anything: initial state.
	g := tl.At(50)
	if g.EdgeCount() != 2 {
		t.Errorf("t=50 edges = %d", g.EdgeCount())
	}
	// Mid-transfer: old club link gone, new club present, old squad still
	// there.
	g = tl.At(115)
	if g.HasEdge(action.Edge{Src: 0, Label: "current_club", Dst: 1}) {
		t.Error("old link should be removed at t=115")
	}
	if !g.HasEdge(action.Edge{Src: 0, Label: "current_club", Dst: 2}) {
		t.Error("new link should exist at t=115")
	}
	if !g.HasEdge(action.Edge{Src: 1, Label: "squad", Dst: 0}) {
		t.Error("old squad link should linger at t=115")
	}
	// After everything: consistent final state.
	g = tl.At(1000)
	if g.EdgeCount() != 3 { // new cc, new squad, league
		t.Errorf("final edges = %d: %v", g.EdgeCount(), g.Edges())
	}
	// At boundary: inclusive.
	if !tl.At(140).HasEdge(action.Edge{Src: 0, Label: "in_league", Dst: 3}) {
		t.Error("At must be inclusive of actions at exactly t")
	}
}

func TestTimelineDiff(t *testing.T) {
	tl := NewTimeline(testRegistry(t), transferActions())
	d := tl.Diff(50, 1000)
	if len(d.Added) != 3 || len(d.Removed) != 2 {
		t.Fatalf("diff = +%v -%v", d.Added, d.Removed)
	}
	// Diff of identical instants is empty.
	d = tl.Diff(115, 115)
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("self diff = %v", d)
	}
}

func TestTimelineSpan(t *testing.T) {
	tl := NewTimeline(testRegistry(t), transferActions())
	if w := tl.Span(); w.Start != 100 || w.End != 141 {
		t.Fatalf("Span = %v", w)
	}
	empty := NewTimeline(testRegistry(t), nil)
	if w := empty.Span(); w != (action.Window{}) {
		t.Fatalf("empty Span = %v", w)
	}
	if g := empty.At(10); g.EdgeCount() != 0 {
		t.Fatal("empty timeline should yield empty graphs")
	}
}

func TestTimelineRumorCancels(t *testing.T) {
	as := []action.Action{
		{Op: action.Add, Edge: action.Edge{Src: 0, Label: "current_club", Dst: 2}, T: 10},
		{Op: action.Remove, Edge: action.Edge{Src: 0, Label: "current_club", Dst: 2}, T: 20},
	}
	tl := NewTimeline(testRegistry(t), as)
	if tl.At(15).EdgeCount() != 1 {
		t.Error("rumor visible mid-window")
	}
	if tl.At(25).EdgeCount() != 0 {
		t.Error("rumor should be reverted")
	}
	if tl.Initial().EdgeCount() != 0 {
		t.Error("first-add edges are not initial")
	}
}
