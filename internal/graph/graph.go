// Package graph holds the Wikipedia graph model of the paper's §3: a
// directed graph whose nodes are typed entities and whose labeled edges are
// the inter-links WiClean maintains. Graph snapshots are what revision
// actions mutate, and the edits graph that mining variants materialize.
package graph

import (
	"fmt"
	"sort"

	"wiclean/internal/action"
	"wiclean/internal/taxonomy"
)

// Graph is a mutable snapshot of entity inter-links at a point in time.
// It is not safe for concurrent mutation; the window-parallel driver gives
// each worker its own graph.
type Graph struct {
	reg   *taxonomy.Registry
	out   map[taxonomy.EntityID][]action.Edge // src -> outgoing edges
	edges map[action.Edge]bool
}

// New returns an empty graph over the registry's entities.
func New(reg *taxonomy.Registry) *Graph {
	return &Graph{
		reg:   reg,
		out:   map[taxonomy.EntityID][]action.Edge{},
		edges: map[action.Edge]bool{},
	}
}

// Registry returns the entity registry backing the graph.
func (g *Graph) Registry() *taxonomy.Registry { return g.reg }

// HasEdge reports whether the edge is present.
func (g *Graph) HasEdge(e action.Edge) bool { return g.edges[e] }

// AddEdge inserts e; inserting an existing edge is a no-op (edges form a
// set, mirroring that a Wikipedia infobox links an article at most once per
// relation instance).
func (g *Graph) AddEdge(e action.Edge) {
	if g.edges[e] {
		return
	}
	g.edges[e] = true
	g.out[e.Src] = append(g.out[e.Src], e)
}

// RemoveEdge deletes e; removing a missing edge is a no-op.
func (g *Graph) RemoveEdge(e action.Edge) {
	if !g.edges[e] {
		return
	}
	delete(g.edges, e)
	outs := g.out[e.Src]
	for i, o := range outs {
		if o == e {
			g.out[e.Src] = append(outs[:i], outs[i+1:]...)
			break
		}
	}
	if len(g.out[e.Src]) == 0 {
		delete(g.out, e.Src)
	}
}

// Apply mutates the graph with one action.
func (g *Graph) Apply(a action.Action) {
	switch a.Op {
	case action.Add:
		g.AddEdge(a.Edge)
	case action.Remove:
		g.RemoveEdge(a.Edge)
	}
}

// ApplyAll applies actions in timestamp order.
func (g *Graph) ApplyAll(as []action.Action) {
	sorted := make([]action.Action, len(as))
	copy(sorted, as)
	action.SortByTime(sorted)
	for _, a := range sorted {
		g.Apply(a)
	}
}

// Out returns the outgoing edges of src, sorted for determinism.
func (g *Graph) Out(src taxonomy.EntityID) []action.Edge {
	es := make([]action.Edge, len(g.out[src]))
	copy(es, g.out[src])
	sort.Slice(es, func(i, j int) bool {
		if es[i].Label != es[j].Label {
			return es[i].Label < es[j].Label
		}
		return es[i].Dst < es[j].Dst
	})
	return es
}

// OutWithLabel returns the targets src links to via label, sorted.
func (g *Graph) OutWithLabel(src taxonomy.EntityID, l action.Label) []taxonomy.EntityID {
	var out []taxonomy.EntityID
	for _, e := range g.out[src] {
		if e.Label == l {
			out = append(out, e.Dst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// TouchedNodes returns every entity that is an endpoint of some edge,
// sorted. This is the node count figures in §6.2 report (entities that the
// materialized edits graph must hold).
func (g *Graph) TouchedNodes() []taxonomy.EntityID {
	seen := map[taxonomy.EntityID]bool{}
	for e := range g.edges {
		seen[e.Src] = true
		seen[e.Dst] = true
	}
	out := make([]taxonomy.EntityID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges sorted, for deterministic iteration.
func (g *Graph) Edges() []action.Edge {
	out := make([]action.Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Dst < b.Dst
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.reg)
	for e := range g.edges {
		c.AddEdge(e)
	}
	return c
}

// Equal reports whether two graphs have the same edge set.
func (g *Graph) Equal(o *Graph) bool {
	if len(g.edges) != len(o.edges) {
		return false
	}
	for e := range g.edges {
		if !o.edges[e] {
			return false
		}
	}
	return true
}

// Reachable returns every entity reachable from src following outgoing
// edges within at most hops steps (hops < 0 means unbounded). src itself is
// included. This is the neighborhood construction of the paper's
// small-data experiment (§6.2, the "2-reachable" subgraph).
func (g *Graph) Reachable(src taxonomy.EntityID, hops int) []taxonomy.EntityID {
	type qe struct {
		id taxonomy.EntityID
		d  int
	}
	seen := map[taxonomy.EntityID]bool{src: true}
	queue := []qe{{src, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if hops >= 0 && cur.d >= hops {
			continue
		}
		for _, e := range g.out[cur.id] {
			if !seen[e.Dst] {
				seen[e.Dst] = true
				queue = append(queue, qe{e.Dst, cur.d + 1})
			}
		}
	}
	out := make([]taxonomy.EntityID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{%d nodes touched, %d edges}", len(g.TouchedNodes()), len(g.edges))
}
