package graph

import (
	"testing"

	"wiclean/internal/action"
	"wiclean/internal/taxonomy"
)

func testRegistry(t *testing.T) *taxonomy.Registry {
	t.Helper()
	x := taxonomy.New()
	x.AddChain("Person", "Athlete", "FootballPlayer")
	x.AddChain("Organisation", "FootballClub")
	x.AddChain("Organisation", "SportsLeague")
	r := taxonomy.NewRegistry(x)
	r.MustAdd("Neymar", "FootballPlayer")       // 0
	r.MustAdd("Barcelona F.C.", "FootballClub") // 1
	r.MustAdd("PSG F.C.", "FootballClub")       // 2
	r.MustAdd("Ligue 1", "SportsLeague")        // 3
	return r
}

func TestAddRemoveHasEdge(t *testing.T) {
	g := New(testRegistry(t))
	e := action.Edge{Src: 0, Label: "current_club", Dst: 2}
	if g.HasEdge(e) {
		t.Fatal("empty graph should have no edges")
	}
	g.AddEdge(e)
	if !g.HasEdge(e) {
		t.Fatal("edge should be present after AddEdge")
	}
	g.AddEdge(e) // idempotent
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	g.RemoveEdge(e)
	if g.HasEdge(e) || g.EdgeCount() != 0 {
		t.Fatal("edge should be gone after RemoveEdge")
	}
	g.RemoveEdge(e) // no-op
	if g.EdgeCount() != 0 {
		t.Fatal("double remove should be a no-op")
	}
}

func TestApplyAllOrdersByTime(t *testing.T) {
	g := New(testRegistry(t))
	e := action.Edge{Src: 0, Label: "current_club", Dst: 2}
	// Remove at t=20 after add at t=10, given unsorted.
	g.ApplyAll([]action.Action{
		{Op: action.Remove, Edge: e, T: 20},
		{Op: action.Add, Edge: e, T: 10},
	})
	if g.HasEdge(e) {
		t.Fatal("edge should be absent: add@10 then remove@20")
	}
}

func TestOutAndOutWithLabel(t *testing.T) {
	g := New(testRegistry(t))
	g.AddEdge(action.Edge{Src: 0, Label: "current_club", Dst: 2})
	g.AddEdge(action.Edge{Src: 0, Label: "in_league", Dst: 3})
	g.AddEdge(action.Edge{Src: 2, Label: "squad", Dst: 0})

	out := g.Out(0)
	if len(out) != 2 {
		t.Fatalf("Out(0) = %v", out)
	}
	if out[0].Label != "current_club" || out[1].Label != "in_league" {
		t.Fatalf("Out(0) not sorted by label: %v", out)
	}
	clubs := g.OutWithLabel(0, "current_club")
	if len(clubs) != 1 || clubs[0] != 2 {
		t.Fatalf("OutWithLabel = %v", clubs)
	}
	if got := g.OutWithLabel(1, "squad"); got != nil {
		t.Fatalf("OutWithLabel on empty source = %v", got)
	}
}

func TestTouchedNodesAndEdges(t *testing.T) {
	g := New(testRegistry(t))
	g.AddEdge(action.Edge{Src: 0, Label: "current_club", Dst: 2})
	g.AddEdge(action.Edge{Src: 2, Label: "squad", Dst: 0})
	nodes := g.TouchedNodes()
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 2 {
		t.Fatalf("TouchedNodes = %v", nodes)
	}
	es := g.Edges()
	if len(es) != 2 || es[0].Src != 0 || es[1].Src != 2 {
		t.Fatalf("Edges = %v", es)
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := New(testRegistry(t))
	g.AddEdge(action.Edge{Src: 0, Label: "current_club", Dst: 2})
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.AddEdge(action.Edge{Src: 0, Label: "in_league", Dst: 3})
	if g.Equal(c) {
		t.Fatal("mutating clone must not affect original")
	}
	if g.EdgeCount() != 1 {
		t.Fatal("original changed by clone mutation")
	}
}

func TestReachable(t *testing.T) {
	g := New(testRegistry(t))
	g.AddEdge(action.Edge{Src: 0, Label: "current_club", Dst: 2})
	g.AddEdge(action.Edge{Src: 2, Label: "in_league", Dst: 3})
	g.AddEdge(action.Edge{Src: 3, Label: "top_club", Dst: 1})

	if got := g.Reachable(0, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Reachable hops=0 = %v", got)
	}
	if got := g.Reachable(0, 1); len(got) != 2 {
		t.Fatalf("Reachable hops=1 = %v", got)
	}
	if got := g.Reachable(0, 2); len(got) != 3 {
		t.Fatalf("Reachable hops=2 = %v", got)
	}
	if got := g.Reachable(0, -1); len(got) != 4 {
		t.Fatalf("Reachable unbounded = %v", got)
	}
}

func TestReachableHandlesCycles(t *testing.T) {
	g := New(testRegistry(t))
	g.AddEdge(action.Edge{Src: 0, Label: "a", Dst: 2})
	g.AddEdge(action.Edge{Src: 2, Label: "b", Dst: 0})
	got := g.Reachable(0, -1)
	if len(got) != 2 {
		t.Fatalf("Reachable with cycle = %v", got)
	}
}

func TestApplyReducedEqualsApplyRaw(t *testing.T) {
	// Applying a raw action sequence and its reduction from the same start
	// state must yield equal graphs (the definition of reduction).
	reg := testRegistry(t)
	raw := []action.Action{
		{Op: action.Add, Edge: action.Edge{Src: 0, Label: "current_club", Dst: 1}, T: 1},
		{Op: action.Remove, Edge: action.Edge{Src: 0, Label: "current_club", Dst: 1}, T: 2},
		{Op: action.Add, Edge: action.Edge{Src: 0, Label: "current_club", Dst: 2}, T: 3},
		{Op: action.Add, Edge: action.Edge{Src: 2, Label: "squad", Dst: 0}, T: 4},
		{Op: action.Add, Edge: action.Edge{Src: 2, Label: "squad", Dst: 0}, T: 5},
	}
	g1 := New(reg)
	g1.ApplyAll(raw)
	g2 := New(reg)
	g2.ApplyAll(action.Reduce(raw))
	if !g1.Equal(g2) {
		t.Fatalf("raw %v != reduced %v", g1, g2)
	}
}

func TestString(t *testing.T) {
	g := New(testRegistry(t))
	g.AddEdge(action.Edge{Src: 0, Label: "current_club", Dst: 2})
	if s := g.String(); s == "" {
		t.Error("String should render")
	}
}
