package graph

import (
	"sort"

	"wiclean/internal/action"
	"wiclean/internal/taxonomy"
)

// Timeline reconstructs graph snapshots from a revision action stream —
// the paper's "graph G(V, E) modeling the relations between entities at a
// given point in time". Edges whose first recorded operation is a Remove
// are assumed present initially (the revision log only shows changes, not
// the pre-existing state).
type Timeline struct {
	reg     *taxonomy.Registry
	actions []action.Action // sorted by time
	initial []action.Edge   // edges inferred to pre-exist the log
}

// NewTimeline builds a timeline over the action stream.
func NewTimeline(reg *taxonomy.Registry, as []action.Action) *Timeline {
	sorted := make([]action.Action, len(as))
	copy(sorted, as)
	action.SortByTime(sorted)

	firstOp := map[action.Edge]action.Op{}
	var initial []action.Edge
	for _, a := range sorted {
		if _, ok := firstOp[a.Edge]; !ok {
			firstOp[a.Edge] = a.Op
			if a.Op == action.Remove {
				initial = append(initial, a.Edge)
			}
		}
	}
	return &Timeline{reg: reg, actions: sorted, initial: initial}
}

// At returns the graph as of time t (inclusive): the inferred initial
// state with every action at or before t applied.
func (tl *Timeline) At(t action.Time) *Graph {
	g := New(tl.reg)
	for _, e := range tl.initial {
		g.AddEdge(e)
	}
	for _, a := range tl.actions {
		if a.T > t {
			break
		}
		g.Apply(a)
	}
	return g
}

// Initial returns the graph state inferred to precede the log.
func (tl *Timeline) Initial() *Graph {
	g := New(tl.reg)
	for _, e := range tl.initial {
		g.AddEdge(e)
	}
	return g
}

// Span returns the time range covered by the recorded actions.
func (tl *Timeline) Span() action.Window {
	if len(tl.actions) == 0 {
		return action.Window{}
	}
	return action.Window{Start: tl.actions[0].T, End: tl.actions[len(tl.actions)-1].T + 1}
}

// GraphDiff is the edge delta between two snapshots.
type GraphDiff struct {
	Added   []action.Edge
	Removed []action.Edge
}

// Diff returns the edges added and removed between times t1 and t2
// (t1 ≤ t2), both sides sorted.
func (tl *Timeline) Diff(t1, t2 action.Time) GraphDiff {
	g1, g2 := tl.At(t1), tl.At(t2)
	var d GraphDiff
	for _, e := range g2.Edges() {
		if !g1.HasEdge(e) {
			d.Added = append(d.Added, e)
		}
	}
	for _, e := range g1.Edges() {
		if !g2.HasEdge(e) {
			d.Removed = append(d.Removed, e)
		}
	}
	sortEdges(d.Added)
	sortEdges(d.Removed)
	return d
}

func sortEdges(es []action.Edge) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Dst < b.Dst
	})
}
