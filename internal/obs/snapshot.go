package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// HistogramSnapshot is the frozen state of one histogram. Counts has one
// entry per bound plus a final +Inf slot; entries are per-bucket (not
// cumulative — WritePrometheus accumulates). Exemplars, when present,
// parallels Counts: entry i is bucket i's latest trace-ID exemplar, with
// a zero entry for buckets that never saw one. It is omitted entirely
// when no bucket holds an exemplar.
type HistogramSnapshot struct {
	Bounds    []float64  `json:"bounds"`
	Counts    []uint64   `json:"counts"`
	Count     uint64     `json:"count"`
	Sum       float64    `json:"sum"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Quantile estimates the q-quantile of the observations by linear
// interpolation inside the owning bucket, Prometheus
// histogram_quantile-style. Observations in the +Inf bucket clamp to the
// highest finite bound. The function is total: q is clamped into [0, 1]
// (NaN counts as 0), and an empty or malformed histogram — zero
// observations, no bounds, or a Counts slice that does not line up with
// Bounds — reports 0 rather than panicking. The estimate's resolution is
// the bucket layout — good enough for the latency percentiles the bench
// reports, not for exact order statistics.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 || len(h.Counts) != len(h.Bounds)+1 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(h.Bounds) { // +Inf bucket
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			inBucket := float64(c)
			below := float64(cum) - inBucket
			frac := (rank - below) / inBucket
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// SpanSnapshot is the frozen aggregate of one span path.
type SpanSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// Snapshot is a point-in-time copy of every metric in a registry,
// JSON-serializable as-is.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      map[string]SpanSnapshot      `json:"spans"`
	Recent     []SpanRecord                 `json:"recent_spans,omitempty"`
}

// Snapshot freezes the registry. Nil-safe: a nil registry yields an empty
// (but fully allocated) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	spans := make(map[string]*spanStat, len(r.spans))
	for k, v := range r.spans {
		spans[k] = v
	}
	s.Recent = append(s.Recent, r.recent...)
	r.mu.RUnlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.buckets)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		for i := range h.exemplars {
			if ex := h.exemplars[i].Load(); ex != nil {
				if hs.Exemplars == nil {
					hs.Exemplars = make([]Exemplar, len(h.buckets))
				}
				hs.Exemplars[i] = *ex
			}
		}
		s.Histograms[k] = hs
	}
	for k, st := range spans {
		st.mu.Lock()
		s.Spans[k] = SpanSnapshot{
			Count:        st.count,
			TotalSeconds: st.total.Seconds(),
			MinSeconds:   st.min.Seconds(),
			MaxSeconds:   st.max.Seconds(),
		}
		st.mu.Unlock()
	}
	sort.Slice(s.Recent, func(i, j int) bool { return s.Recent[i].Start.Before(s.Recent[j].Start) })
	return s
}

// Labeled builds a metric name carrying a Prometheus label block:
// Labeled("x_total", "path", "/a") == `x_total{path="/a"}`. Pairs are
// key, value, key, value, ...; values are escaped per the text format.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// splitName separates a possibly-labeled metric name into its base name
// and the label body (without braces; empty when unlabeled).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels merges two label bodies with a comma.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (v0.0.4): counters and gauges verbatim, histograms with
// cumulative le buckets plus _sum/_count, span aggregates as a summary
// keyed by a span label. Output order is deterministic.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{} // base names with an emitted # TYPE line
	emitType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}

	writePlain := func(names []string, kind string, value func(string) string) {
		sort.Strings(names)
		for _, name := range names {
			base, labels := splitName(name)
			emitType(base, kind)
			if labels != "" {
				fmt.Fprintf(w, "%s{%s} %s\n", base, labels, value(name))
			} else {
				fmt.Fprintf(w, "%s %s\n", base, value(name))
			}
		}
	}

	counterNames := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		counterNames = append(counterNames, name)
	}
	writePlain(counterNames, "counter", func(n string) string {
		return fmt.Sprintf("%d", s.Counters[n])
	})

	gaugeNames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gaugeNames = append(gaugeNames, name)
	}
	writePlain(gaugeNames, "gauge", func(n string) string {
		return formatFloat(s.Gauges[n])
	})

	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		base, labels := splitName(name)
		emitType(base, "histogram")
		cum := uint64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			fmt.Fprintf(w, "%s_bucket{%s} %d", base,
				joinLabels(labels, fmt.Sprintf("le=%q", le)), cum)
			// OpenMetrics-style exemplar suffix: ties the bucket to one
			// concrete trace ID so a /metrics tail leads to /debug/traces.
			if i < len(h.Exemplars) && h.Exemplars[i].TraceID != "" {
				fmt.Fprintf(w, " # {trace_id=%q} %s",
					h.Exemplars[i].TraceID, formatFloat(h.Exemplars[i].Value))
			}
			fmt.Fprintln(w)
		}
		if labels != "" {
			fmt.Fprintf(w, "%s_sum{%s} %s\n", base, labels, formatFloat(h.Sum))
			fmt.Fprintf(w, "%s_count{%s} %d\n", base, labels, h.Count)
		} else {
			fmt.Fprintf(w, "%s_sum %s\n", base, formatFloat(h.Sum))
			fmt.Fprintf(w, "%s_count %d\n", base, h.Count)
		}
	}

	spanNames := make([]string, 0, len(s.Spans))
	for name := range s.Spans {
		spanNames = append(spanNames, name)
	}
	sort.Strings(spanNames)
	if len(spanNames) > 0 {
		emitType(SpanSeconds, "summary")
	}
	for _, name := range spanNames {
		sp := s.Spans[name]
		fmt.Fprintf(w, "%s_sum{span=%q} %s\n", SpanSeconds, name, formatFloat(sp.TotalSeconds))
		fmt.Fprintf(w, "%s_count{span=%q} %d\n", SpanSeconds, name, sp.Count)
	}
	return nil
}
