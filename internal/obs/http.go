package obs

import (
	"expvar"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MetricsHandler serves the registry in the Prometheus text exposition
// format — mount it at GET /metrics. Nil-safe: a nil registry serves an
// empty exposition.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w)
	})
}

var publishOnce sync.Map // expvar name -> struct{}, guards duplicate Publish panics

// PublishExpvar exposes the registry's snapshot under the given expvar
// name, bridging it onto GET /debug/vars. Publishing the same name twice
// (e.g. from tests) is a no-op instead of the expvar duplicate panic.
// Nil-safe: a nil registry publishes empty snapshots.
func (r *Registry) PublishExpvar(name string) {
	if _, loaded := publishOnce.LoadOrStore(name, struct{}{}); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// statusRecorder captures the response status for the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer when it supports streaming.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// HTTPMiddleware wraps next, recording per-endpoint request counts (with
// a status-class label), and latency histograms. To bound label
// cardinality the path label is the matching entry of known (exact match,
// or prefix match for entries ending in "/"); anything else records as
// "other". A nil registry returns next unchanged.
func (r *Registry) HTTPMiddleware(next http.Handler, known ...string) http.Handler {
	return r.HTTPMiddlewareTraced(next, nil, known...)
}

// HTTPMiddlewareTraced is HTTPMiddleware plus exemplar linkage: when
// exemplar returns a non-empty trace ID for a request — typically read
// off the request context installed by an outer tracing middleware — the
// latency observation carries it as the bucket's exemplar. The extractor
// is a function parameter (not a trace-package call) so obs stays
// import-free of the trace layer it feeds. A nil registry returns next
// unchanged; a nil exemplar degrades to HTTPMiddleware.
func (r *Registry) HTTPMiddlewareTraced(next http.Handler, exemplar func(*http.Request) string, known ...string) http.Handler {
	if r == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sr, req)
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		traceID := ""
		if exemplar != nil {
			traceID = exemplar(req)
		}
		path := NormalizePath(req.URL.Path, known)
		r.Counter(Labeled(HTTPRequests, "path", path, "code", statusClass(sr.status))).Inc()
		r.Histogram(Labeled(HTTPRequestSeconds, "path", path), DurationBuckets).
			ObserveDurationWithExemplar(time.Since(start), traceID)
	})
}

// NormalizePath maps a request path onto the bounded known set the HTTP
// metrics are labeled with: an exact match, a prefix match for entries
// ending in "/", or "other". Shared with the server's access log so logs
// and metrics agree on endpoint naming.
func NormalizePath(p string, known []string) string {
	for _, k := range known {
		if p == k || (strings.HasSuffix(k, "/") && strings.HasPrefix(p, k)) {
			return k
		}
	}
	return "other"
}

func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}
