package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Span is a named timer for one pipeline stage. Spans nest: Child opens a
// sub-span whose path is parent-path + "/" + name, so a trace of
//
//	windows.run → step00 → mine
//
// aggregates under "windows.run", "windows.run/step00" and
// "windows.run/step00/mine". End records the duration into the registry's
// per-path aggregate and the recent-span ring buffer. A nil *Span (from a
// nil registry) is a no-op that still hands out nil children.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
}

// spanStat aggregates finished spans of one path.
type spanStat struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// SpanRecord is one finished span in the recent-trace ring. The ring
// holds the newest recentSpanCap records; once full, each new span
// overwrites the oldest and the ObsSpansDropped counter increments.
// TraceID links the record to a request-scoped trace when the span came
// from the trace layer (see internal/obs/trace); empty otherwise.
type SpanRecord struct {
	Path    string
	Start   time.Time
	Elapsed time.Duration
	TraceID string
}

// spanRecordJSON is SpanRecord's explicit wire form: elapsed_ns is a
// plain integer nanosecond count. Marshaling time.Duration directly
// would also emit integer nanoseconds today, but only as an unstated
// consequence of Duration being an int64 — consumers reading
// "elapsed_ns" deserve a field that says so in its type.
type spanRecordJSON struct {
	Path      string    `json:"path"`
	Start     time.Time `json:"start"`
	ElapsedNS int64     `json:"elapsed_ns"`
	TraceID   string    `json:"trace_id,omitempty"`
}

// MarshalJSON renders the record with elapsed_ns as explicit integer
// nanoseconds.
func (s SpanRecord) MarshalJSON() ([]byte, error) {
	return json.Marshal(spanRecordJSON{
		Path:      s.Path,
		Start:     s.Start,
		ElapsedNS: s.Elapsed.Nanoseconds(),
		TraceID:   s.TraceID,
	})
}

// UnmarshalJSON parses the wire form written by MarshalJSON.
func (s *SpanRecord) UnmarshalJSON(b []byte) error {
	var w spanRecordJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*s = SpanRecord{Path: w.Path, Start: w.Start, Elapsed: time.Duration(w.ElapsedNS), TraceID: w.TraceID}
	return nil
}

// Span opens a root span with the given path name. Nil-safe.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, path: name, start: time.Now()}
}

// Child opens a nested span under s. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, path: s.path + "/" + name, start: time.Now()}
}

// End closes the span, folds its duration into the per-path aggregate and
// the recent ring, and returns the elapsed time. Nil-safe (0).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	elapsed := time.Since(s.start)
	s.reg.ObserveSpan(s.path, s.start, elapsed, "")
	return elapsed
}

// ObserveSpan folds one externally timed span into the per-path
// aggregate and the recent ring — the hook the trace layer uses so
// request-scoped spans keep feeding the same aggregates as plain
// obs.Spans. traceID, when non-empty, is recorded on the ring entry.
// Nil-safe.
func (r *Registry) ObserveSpan(path string, start time.Time, elapsed time.Duration, traceID string) {
	if r == nil {
		return
	}
	// Resolve the drop counter before taking r.mu: Counter takes r.mu
	// itself, and the ring update below must stay deadlock-free.
	dropped := r.Counter(ObsSpansDropped)

	r.mu.Lock()
	st := r.spans[path]
	if st == nil {
		st = &spanStat{}
		r.spans[path] = st
	}
	rec := SpanRecord{Path: path, Start: start, Elapsed: elapsed, TraceID: traceID}
	overflow := false
	if len(r.recent) < recentSpanCap {
		r.recent = append(r.recent, rec)
	} else {
		r.recent[r.recentPos] = rec
		overflow = true
	}
	r.recentPos = (r.recentPos + 1) % recentSpanCap
	r.mu.Unlock()
	if overflow {
		dropped.Inc()
	}

	st.mu.Lock()
	st.count++
	st.total += elapsed
	if st.count == 1 || elapsed < st.min {
		st.min = elapsed
	}
	if elapsed > st.max {
		st.max = elapsed
	}
	st.mu.Unlock()
}

// Time runs f under a span named path and returns its duration. Nil-safe:
// with a nil registry f still runs, untimed.
func (r *Registry) Time(path string, f func()) time.Duration {
	sp := r.Span(path)
	f()
	return sp.End()
}
