package obs

import (
	"sync"
	"time"
)

// Span is a named timer for one pipeline stage. Spans nest: Child opens a
// sub-span whose path is parent-path + "/" + name, so a trace of
//
//	windows.run → step00 → mine
//
// aggregates under "windows.run", "windows.run/step00" and
// "windows.run/step00/mine". End records the duration into the registry's
// per-path aggregate and the recent-span ring buffer. A nil *Span (from a
// nil registry) is a no-op that still hands out nil children.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
}

// spanStat aggregates finished spans of one path.
type spanStat struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// SpanRecord is one finished span in the recent-trace ring.
type SpanRecord struct {
	Path    string        `json:"path"`
	Start   time.Time     `json:"start"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Span opens a root span with the given path name. Nil-safe.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, path: name, start: time.Now()}
}

// Child opens a nested span under s. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, path: s.path + "/" + name, start: time.Now()}
}

// End closes the span, folds its duration into the per-path aggregate and
// the recent ring, and returns the elapsed time. Nil-safe (0).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	elapsed := time.Since(s.start)
	r := s.reg

	r.mu.Lock()
	st := r.spans[s.path]
	if st == nil {
		st = &spanStat{}
		r.spans[s.path] = st
	}
	rec := SpanRecord{Path: s.path, Start: s.start, Elapsed: elapsed}
	if len(r.recent) < recentSpanCap {
		r.recent = append(r.recent, rec)
	} else {
		r.recent[r.recentPos] = rec
	}
	r.recentPos = (r.recentPos + 1) % recentSpanCap
	r.mu.Unlock()

	st.mu.Lock()
	st.count++
	st.total += elapsed
	if st.count == 1 || elapsed < st.min {
		st.min = elapsed
	}
	if elapsed > st.max {
		st.max = elapsed
	}
	st.mu.Unlock()
	return elapsed
}

// Time runs f under a span named path and returns its duration. Nil-safe:
// with a nil registry f still runs, untimed.
func (r *Registry) Time(path string, f func()) time.Duration {
	sp := r.Span(path)
	f()
	return sp.End()
}
