package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"wiclean/internal/obs"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{}
	for i := range sc.TraceID {
		sc.TraceID[i] = byte(i + 1)
	}
	for i := range sc.SpanID {
		sc.SpanID[i] = byte(0xa0 + i)
	}
	v := FormatTraceparent(sc)
	if !strings.HasPrefix(v, "00-") || !strings.HasSuffix(v, "-01") {
		t.Fatalf("traceparent = %q", v)
	}
	got, ok := ParseTraceparent(v)
	if !ok || got != sc {
		t.Fatalf("round trip = %+v ok=%v, want %+v", got, ok, sc)
	}
	// Uppercase hex and future-version trailing fields still parse.
	upper := "01-" + strings.ToUpper(sc.TraceID.String()) + "-" + sc.SpanID.String() + "-00-extra"
	if got, ok := ParseTraceparent(upper); !ok || got != sc {
		t.Fatalf("lenient parse = %+v ok=%v", got, ok)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	valid := FormatTraceparent(SpanContext{TraceID: TraceID{1}, SpanID: SpanID{2}})
	bad := []string{
		"",
		"00-abc-def-01",
		"zz-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01",
		"ff-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("b", 16) + "-01",
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01",
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("b", 16) + "-01",
		strings.ReplaceAll(valid, "-01", "-0x"),
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", v)
		}
	}
}

func TestHeadSamplingDeterministic(t *testing.T) {
	id := TraceID{0x80} // draw = 0.5 exactly
	if headSampled(id, 0.5) {
		t.Error("draw 0.5 must not pass rate 0.5 (strict less-than)")
	}
	if !headSampled(id, 0.51) {
		t.Error("draw 0.5 must pass rate 0.51")
	}
	for _, rate := range []float64{0, 0.25, 0.5, 1} {
		a := headSampled(id, rate)
		for i := 0; i < 3; i++ {
			if headSampled(id, rate) != a {
				t.Fatalf("sampling decision not deterministic at rate %v", rate)
			}
		}
	}
	if headSampled(TraceID{0xff}, 0) {
		t.Error("rate 0 must drop everything")
	}
	if !headSampled(TraceID{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, 1) {
		t.Error("rate 1 must keep everything")
	}
}

func TestTraceTreeExports(t *testing.T) {
	reg := obs.NewRegistry()
	var out bytes.Buffer
	tr := New(Config{Service: "test", Registry: reg, SampleRate: 1, Output: &out})

	ctx, root := tr.StartRoot(context.Background(), "windows.window")
	root.SetAttrInt("window_index", 3)
	cctx, mine := StartSpan(ctx, "mining.mine")
	mine.SetAttr("seed_type", "FootballPlayer")
	_, grow := StartSpan(cctx, "mining.grow")
	grow.End()
	mine.End()
	root.End()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(recent))
	}
	exp := recent[0]
	if exp.Service != "test" || exp.Root != "windows.window" || exp.Reason != ReasonSampled {
		t.Fatalf("export header = %+v", exp)
	}
	if exp.TraceID != root.TraceIDString() || exp.Parent != "" {
		t.Fatalf("trace identity = %q parent %q", exp.TraceID, exp.Parent)
	}
	if len(exp.Spans) != 3 {
		t.Fatalf("exported %d spans, want 3", len(exp.Spans))
	}
	byName := map[string]SpanExport{}
	for i, sp := range exp.Spans {
		byName[sp.Name] = sp
		if i > 0 && exp.Spans[i-1].Start > sp.Start {
			t.Error("spans not sorted by start")
		}
	}
	if byName["windows.window"].Parent != "" {
		t.Error("root span must have no parent")
	}
	if byName["mining.mine"].Parent != byName["windows.window"].SpanID {
		t.Error("mining.mine must parent on the window root")
	}
	if byName["mining.grow"].Parent != byName["mining.mine"].SpanID {
		t.Error("mining.grow must parent on mining.mine")
	}
	if byName["windows.window"].Attrs["window_index"] != "3" ||
		byName["mining.mine"].Attrs["seed_type"] != "FootballPlayer" {
		t.Errorf("attributes lost: %+v", exp.Spans)
	}

	// The JSONL sink got the same export.
	var fromFile TraceExport
	if err := json.Unmarshal(bytes.TrimSpace(out.Bytes()), &fromFile); err != nil {
		t.Fatalf("JSONL output: %v", err)
	}
	if fromFile.TraceID != exp.TraceID || len(fromFile.Spans) != 3 {
		t.Fatalf("JSONL export = %+v", fromFile)
	}

	// Every ended span folds into the obs aggregate under trace/<name>.
	snap := reg.Snapshot()
	for _, name := range []string{"trace/windows.window", "trace/mining.mine", "trace/mining.grow"} {
		if snap.Spans[name].Count != 1 {
			t.Errorf("obs aggregate %q count = %d, want 1", name, snap.Spans[name].Count)
		}
	}
	if snap.Counters[obs.TracesStarted] != 1 || snap.Counters[obs.TracesExported] != 1 {
		t.Errorf("trace counters = %v", snap.Counters)
	}
}

func TestErrorAndSlowForceExport(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{Registry: reg, SampleRate: 0}) // sampling alone keeps nothing

	// Sampled out: no error, no slow threshold.
	_, root := tr.StartRoot(context.Background(), "quiet")
	root.End()
	if got := len(tr.Recent()); got != 0 {
		t.Fatalf("rate-0 trace exported (%d in ring)", got)
	}
	if reg.Snapshot().Counters[obs.TracesSampledOut] != 1 {
		t.Error("TracesSampledOut not counted")
	}

	// Errored: always exports, reason error.
	_, bad := tr.StartRoot(context.Background(), "failing")
	bad.Fail(errors.New("boom"))
	bad.End()
	recent := tr.Recent()
	if len(recent) != 1 || recent[0].Reason != ReasonError {
		t.Fatalf("errored trace export = %+v", recent)
	}
	if recent[0].Spans[0].Error != "boom" {
		t.Fatalf("span error = %q", recent[0].Spans[0].Error)
	}

	// Slow: at/past the threshold always exports, reason slow.
	slow := New(Config{SampleRate: 0, SlowThreshold: time.Nanosecond})
	_, sp := slow.StartRoot(context.Background(), "slow")
	time.Sleep(time.Microsecond)
	sp.End()
	if recent := slow.Recent(); len(recent) != 1 || recent[0].Reason != ReasonSlow {
		t.Fatalf("slow trace export = %+v", recent)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New(Config{SampleRate: 1, RingTraces: 2})
	for i := 0; i < 3; i++ {
		_, root := tr.StartRoot(context.Background(), fmt.Sprintf("t%d", i))
		root.End()
	}
	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring holds %d, want 2", len(recent))
	}
	if recent[0].Root != "t1" || recent[1].Root != "t2" {
		t.Fatalf("ring order = %s, %s; want t1, t2 (oldest evicted, oldest-first order)",
			recent[0].Root, recent[1].Root)
	}
}

func TestRemoteParentJoinsTrace(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	parent := SpanContext{TraceID: TraceID{9, 9}, SpanID: SpanID{7}}
	ctx, root := tr.StartRemote(context.Background(), "http.request", parent)
	if root.TraceID() != parent.TraceID {
		t.Fatal("remote root must adopt the propagated trace ID")
	}
	_, child := StartSpan(ctx, "inner")
	child.End()
	root.End()
	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("ring = %d", len(recent))
	}
	if recent[0].TraceID != parent.TraceID.String() || recent[0].Parent != parent.SpanID.String() {
		t.Fatalf("joined export = %+v", recent[0])
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.StartRoot(context.Background(), "x")
	if root != nil || ctx != context.Background() {
		t.Fatal("nil tracer must hand back ctx unchanged and a nil span")
	}
	// All span operations are no-ops on nil.
	root.SetAttr("k", "v")
	root.SetAttrInt("n", 1)
	root.Fail(errors.New("x"))
	if root.End() != 0 || root.TraceIDString() != "" || !root.TraceID().IsZero() {
		t.Fatal("nil span accessors must return zero values")
	}
	if _, sp := StartSpan(context.Background(), "y"); sp != nil {
		t.Fatal("StartSpan without a trace in ctx must return a nil span")
	}
	if FromContext(nil) != nil || FromContext(context.Background()) != nil {
		t.Fatal("FromContext must be nil-safe")
	}
	if tr.Recent() != nil || tr.SampleRate() != 0 {
		t.Fatal("nil tracer accessors")
	}
}

func TestDoubleEndIsNoOp(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	_, root := tr.StartRoot(context.Background(), "once")
	root.End()
	if d := root.End(); d != 0 {
		t.Fatalf("second End = %v, want 0", d)
	}
	if got := len(tr.Recent()); got != 1 {
		t.Fatalf("double End exported %d traces", got)
	}
}

// TestConcurrentTracesDoNotInterleave runs many traced requests in
// parallel (run under -race in CI): every exported trace must hold
// exactly its own spans with intact parent links — concurrent traces
// share a tracer but never a span tree.
func TestConcurrentTracesDoNotInterleave(t *testing.T) {
	var out bytes.Buffer
	tr := New(Config{SampleRate: 1, RingTraces: 64, Output: &out})
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tag := fmt.Sprintf("req%02d", i)
			ctx, root := tr.StartRoot(context.Background(), "root-"+tag)
			for j := 0; j < 4; j++ {
				cctx, sp := StartSpan(ctx, fmt.Sprintf("child-%s-%d", tag, j))
				_, leaf := StartSpan(cctx, fmt.Sprintf("leaf-%s-%d", tag, j))
				leaf.End()
				sp.End()
			}
			root.End()
		}(i)
	}
	wg.Wait()

	recent := tr.Recent()
	if len(recent) != workers {
		t.Fatalf("exported %d traces, want %d", len(recent), workers)
	}
	for _, exp := range recent {
		tag := strings.TrimPrefix(exp.Root, "root-")
		if len(exp.Spans) != 9 { // root + 4×(child+leaf)
			t.Fatalf("trace %s holds %d spans, want 9", exp.TraceID, len(exp.Spans))
		}
		ids := map[string]bool{}
		for _, sp := range exp.Spans {
			if !strings.Contains(sp.Name, tag) {
				t.Fatalf("trace %s (%s) contains foreign span %s", exp.TraceID, tag, sp.Name)
			}
			ids[sp.SpanID] = true
		}
		for _, sp := range exp.Spans {
			if sp.Parent != "" && !ids[sp.Parent] {
				t.Fatalf("span %s parents on %s, which is outside its trace", sp.Name, sp.Parent)
			}
		}
	}

	// The JSONL sink saw one intact line per trace.
	sc := bufio.NewScanner(&out)
	lines := 0
	for sc.Scan() {
		lines++
		var exp TraceExport
		if err := json.Unmarshal(sc.Bytes(), &exp); err != nil {
			t.Fatalf("JSONL line %d: %v", lines, err)
		}
	}
	if lines != workers {
		t.Fatalf("JSONL sink holds %d lines, want %d", lines, workers)
	}
}
