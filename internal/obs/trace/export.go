package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"wiclean/internal/obs"
)

// SpanExport is one finished span in a trace export. Field order is the
// serialization order, fixed so exports are deterministic; Attrs is a
// map, which encoding/json renders in sorted key order.
type SpanExport struct {
	Name    string            `json:"name"`
	SpanID  string            `json:"span_id"`
	Parent  string            `json:"parent_id,omitempty"`
	Start   int64             `json:"start_unix_ns"`
	Elapsed int64             `json:"elapsed_ns"`
	Error   string            `json:"error,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Export reasons: why a completed trace was kept.
const (
	// ReasonError marks a trace exported because a span recorded an error.
	ReasonError = "error"
	// ReasonSlow marks a trace exported because its root span ran at or
	// past the slow threshold.
	ReasonSlow = "slow"
	// ReasonSampled marks a trace kept by the head-sampling draw.
	ReasonSampled = "sampled"
)

// TraceExport is one completed trace as written to the JSONL sink and
// served at /debug/traces: this process's spans of the trace, sorted by
// (start, span ID). A cross-process trace appears as one TraceExport
// per participating process sharing a trace ID; wiclean-trace stitches
// them back together by that ID.
type TraceExport struct {
	TraceID string `json:"trace_id"`
	Service string `json:"service,omitempty"`
	Root    string `json:"root"`
	// Parent is the remote parent span of this process's root span —
	// non-empty exactly when the trace was joined via a traceparent.
	Parent  string       `json:"parent_id,omitempty"`
	Start   int64        `json:"start_unix_ns"`
	Elapsed int64        `json:"elapsed_ns"`
	Reason  string       `json:"reason"`
	Spans   []SpanExport `json:"spans"`
}

// finish runs the export decision for a completed trace: errored and
// slow traces always export; everything else follows the deterministic
// head-sampling draw on the trace ID.
func (t *Tracer) finish(at *activeTrace, root *Span, elapsed time.Duration) {
	at.mu.Lock()
	errored := at.errored
	spans := at.spans
	at.spans = nil
	at.mu.Unlock()

	reason := ""
	switch {
	case errored:
		reason = ReasonError
	case t.cfg.SlowThreshold > 0 && elapsed >= t.cfg.SlowThreshold:
		reason = ReasonSlow
	case headSampled(at.id, t.cfg.SampleRate):
		reason = ReasonSampled
	}
	if reason == "" {
		t.cfg.Registry.Counter(obs.TracesSampledOut).Inc()
		return
	}

	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	exp := TraceExport{
		TraceID: at.id.String(),
		Service: t.cfg.Service,
		Root:    root.name,
		Start:   root.start.UnixNano(),
		Elapsed: elapsed.Nanoseconds(),
		Reason:  reason,
		Spans:   spans,
	}
	if !root.parent.IsZero() {
		exp.Parent = root.parent.String()
	}
	t.cfg.Registry.Counter(obs.TracesExported).Inc()

	var line []byte
	if t.cfg.Output != nil {
		// Marshal outside the lock; only the write is serialized.
		line, _ = json.Marshal(exp)
		line = append(line, '\n')
	}
	t.mu.Lock()
	if len(t.ring) < t.cfg.RingTraces {
		t.ring = append(t.ring, exp)
	} else {
		t.ring[t.ringPos] = exp
	}
	t.ringPos = (t.ringPos + 1) % t.cfg.RingTraces
	if line != nil {
		_, _ = t.cfg.Output.Write(line)
	}
	t.mu.Unlock()
}

// Recent returns the completed-trace ring in completion order, oldest
// first. Nil-safe (nil).
func (t *Tracer) Recent() []TraceExport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceExport, 0, len(t.ring))
	if len(t.ring) < t.cfg.RingTraces {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.ringPos:]...)
	return append(out, t.ring[:t.ringPos]...)
}

// Handler serves the completed-trace ring as JSON — mount it at
// GET /debug/traces. ?trace_id=<32 hex> filters to one trace's exports.
// Nil-safe: a nil tracer serves an empty list.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces := t.Recent()
		if want := r.URL.Query().Get("trace_id"); want != "" {
			kept := traces[:0:0]
			for _, tr := range traces {
				if tr.TraceID == want {
					kept = append(kept, tr)
				}
			}
			traces = kept
		}
		if traces == nil {
			traces = []TraceExport{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"traces": traces})
	})
}
