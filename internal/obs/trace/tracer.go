package trace

import (
	"context"
	"io"
	"strconv"
	"sync"
	"time"

	"wiclean/internal/obs"
)

// Config configures a Tracer. The zero value is usable: every trace is
// head-sampled in, nothing is written to a JSONL sink, and the completed
// ring keeps DefaultRingTraces traces.
type Config struct {
	// Service names the process on exports (e.g. "wiclean-server"), so a
	// stitched cross-process trace shows which spans ran where.
	Service string

	// Registry receives the tracer's counters and the per-span-name
	// aggregate timings of every ended span; nil is a no-op.
	Registry *obs.Registry

	// SampleRate is the head-sampling keep fraction in [0, 1]; 1 keeps
	// every trace. The decision is a deterministic function of the trace
	// ID (see headSampled). Errored and slow traces export regardless.
	SampleRate float64

	// SlowThreshold forces export of any trace whose root span runs at
	// least this long, independent of sampling; 0 disables the slow rule.
	SlowThreshold time.Duration

	// RingTraces bounds the in-memory ring of completed, exported traces
	// served at /debug/traces (<=0 = DefaultRingTraces). Overflow drops
	// the oldest trace.
	RingTraces int

	// Output, when non-nil, receives one JSON line per exported trace
	// (the -trace-out sink). Writes are serialized by the tracer.
	Output io.Writer
}

// DefaultRingTraces is the completed-trace ring capacity when
// Config.RingTraces is unset.
const DefaultRingTraces = 64

// Tracer creates and collects request-scoped traces. A nil *Tracer is a
// valid no-op: StartRoot returns a nil span and the context unchanged.
type Tracer struct {
	cfg Config

	mu      sync.Mutex
	ring    []TraceExport // completed exported traces, ring-ordered
	ringPos int
}

// New returns a Tracer with the given configuration.
func New(cfg Config) *Tracer {
	if cfg.RingTraces <= 0 {
		cfg.RingTraces = DefaultRingTraces
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	return &Tracer{cfg: cfg, ring: make([]TraceExport, 0, cfg.RingTraces)}
}

// activeTrace is the per-trace collector: every span of one trace
// appends its finished record here, under this trace's own lock, so
// concurrent traces never interleave state.
type activeTrace struct {
	tracer *Tracer
	id     TraceID

	mu      sync.Mutex
	spans   []SpanExport
	errored bool
}

// Span is one timed operation inside a trace. Spans are created with
// StartRoot (new trace) or StartSpan (child of the context's span) and
// closed with End; attributes and errors attach between the two. All
// methods are safe on a nil *Span, which is what StartSpan hands out
// when the context carries no trace.
type Span struct {
	trace  *activeTrace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	isRoot bool

	mu     sync.Mutex
	attrs  map[string]string
	errMsg string
	ended  bool
}

// ctxKey keys the current span in a context.Context.
type ctxKey struct{}

// FromContext returns the context's current span, or nil when the
// context carries none.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ContextWith returns ctx carrying sp as the current span.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// StartRoot opens a new trace with a fresh trace ID and returns the
// root span plus a context carrying it. Nil-safe: a nil tracer returns
// ctx unchanged and a nil span.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	return t.StartRemote(ctx, name, SpanContext{})
}

// StartRemote opens this process's root span of a trace that may have
// started elsewhere: with a non-zero parent (a parsed traceparent), the
// new span joins the remote trace under that parent span; with a zero
// parent it behaves like StartRoot. Nil-safe.
func (t *Tracer) StartRemote(ctx context.Context, name string, parent SpanContext) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	at := &activeTrace{tracer: t}
	sp := &Span{
		trace:  at,
		id:     newSpanID(),
		name:   name,
		start:  time.Now(),
		isRoot: true,
	}
	if parent.IsZero() {
		at.id = newTraceID()
	} else {
		at.id = parent.TraceID
		sp.parent = parent.SpanID
	}
	t.cfg.Registry.Counter(obs.TracesStarted).Inc()
	return ContextWith(ctx, sp), sp
}

// StartSpan opens a child of the context's current span and returns it
// with a context carrying the child. When the context has no span —
// tracing disabled, or a call path outside any request — it returns ctx
// unchanged and a nil, no-op span, so call sites never branch.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{
		trace:  parent.trace,
		id:     newSpanID(),
		parent: parent.id,
		name:   name,
		start:  time.Now(),
	}
	return ContextWith(ctx, sp), sp
}

// TraceID returns the span's trace ID; zero for a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace.id
}

// SpanID returns the span's own ID; zero for a nil span.
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// TraceIDString returns the hex trace ID, or "" for a nil span — the
// form exemplar and structured-log call sites want, where an all-zero
// hex ID would read as a real (broken) trace.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.trace.id.String()
}

// Context returns the span's wire identity for propagation; zero for a
// nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.trace.id, SpanID: s.id}
}

// SetAttr attaches a key/value attribute (window index, seed type,
// cache hit/miss, retry count, ...). Later writes win. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SetAttrInt is SetAttr for integer values.
func (s *Span) SetAttrInt(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// Fail records err on the span and marks the whole trace errored, which
// forces export past head sampling. A nil error (or nil span) is a
// no-op, so "defer sp.Fail(err)"-style call sites need no branch.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
	s.trace.mu.Lock()
	s.trace.errored = true
	s.trace.mu.Unlock()
}

// End closes the span: its record joins the trace's span list, its
// duration folds into the obs registry's per-span-name aggregate, and —
// for the root span — the completed trace is exported if sampling,
// error status or the slow threshold says so. End returns the elapsed
// time; double-End and nil-End return 0.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return 0
	}
	s.ended = true
	elapsed := time.Since(s.start)
	rec := SpanExport{
		Name:    s.name,
		SpanID:  s.id.String(),
		Start:   s.start.UnixNano(),
		Elapsed: elapsed.Nanoseconds(),
		Error:   s.errMsg,
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			rec.Attrs[k] = v
		}
	}
	s.mu.Unlock()

	at := s.trace
	reg := at.tracer.registry()
	reg.Counter(obs.TraceSpans).Inc()
	// Fold into the per-path span aggregates under a "trace/" prefix:
	// trace spans feed the same aggregate machinery as plain obs.Spans
	// (nothing regresses when tracing is on), but in their own namespace
	// so paths never double-count sites that also keep an obs.Span.
	reg.ObserveSpan("trace/"+s.name, s.start, elapsed, at.id.String())

	at.mu.Lock()
	at.spans = append(at.spans, rec)
	at.mu.Unlock()
	if s.isRoot {
		at.tracer.finish(at, s, elapsed)
	}
	return elapsed
}

// registry returns the tracer's obs registry; nil-safe.
func (t *Tracer) registry() *obs.Registry {
	if t == nil {
		return nil
	}
	return t.cfg.Registry
}

// SampleRate returns the configured head-sampling rate; nil-safe (0).
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	return t.cfg.SampleRate
}
