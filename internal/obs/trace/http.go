package trace

import (
	"context"
	"net/http"
	"strconv"
)

// Inject stamps the context's current span onto h as a traceparent
// header, so the receiving server's middleware joins the caller's trace
// with the correct parent link. Without a span in ctx it leaves h
// untouched.
func Inject(ctx context.Context, h http.Header) {
	sp := FromContext(ctx)
	if sp == nil {
		return
	}
	h.Set(Header, FormatTraceparent(sp.Context()))
}

// statusWriter captures the response status for the request span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer when it supports streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusError satisfies error for the 5xx span failure without
// allocating a format call per request.
type statusError int

func (e statusError) Error() string { return "http status " + strconv.Itoa(int(e)) }

// HTTPMiddleware wraps next so every request runs under a span named
// "http.request": an incoming traceparent joins the caller's trace
// (cross-process stitching), anything else starts a fresh one. The span
// records method, path and status; 5xx responses mark the trace errored
// so it exports past head sampling. A nil tracer returns next
// unchanged.
func (t *Tracer) HTTPMiddleware(next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var parent SpanContext
		if v := req.Header.Get(Header); v != "" {
			parent, _ = ParseTraceparent(v) // malformed → fresh trace
		}
		ctx, sp := t.StartRemote(req.Context(), "http.request", parent)
		sp.SetAttr("method", req.Method)
		sp.SetAttr("path", req.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, req.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		sp.SetAttrInt("status", int64(sw.status))
		if sw.status >= 500 {
			sp.Fail(statusError(sw.status))
		}
		sp.End()
	})
}
