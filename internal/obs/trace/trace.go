// Package trace layers request-scoped trace trees on top of the obs
// package's aggregate spans. Where obs.Span folds every timing into a
// per-path aggregate (count/min/max/total) and forgets the individual
// request, a trace.Span belongs to exactly one Trace — one mined window,
// one HTTP request — identified by a 128-bit trace ID that travels
// through context.Context inside a process and through the W3C
// traceparent header between processes. A two-hop chained-server mine
// (miner A fetching from wiclean-server B via "-source http") therefore
// yields one stitched trace whose spans cover both processes.
//
// The design is observe-only: spans record timings and attributes but
// never feed back into mining decisions, so mining output is
// byte-identical with tracing on or off at any sample rate. Every
// operation on a nil *Tracer or nil *Span is a no-op, mirroring the obs
// nil-safety contract, and each ended span still folds into the obs
// registry's per-span-name aggregate so the /metrics summary keeps
// working when tracing is enabled.
//
// Completed traces export deterministically — spans sorted by (start,
// span ID), struct fields in fixed order, attribute maps rendered in key
// order by encoding/json — to a bounded in-memory ring (served at
// GET /debug/traces) and optionally to a JSONL sink. Head-based sampling
// hashes the trace ID, so every process of a distributed trace reaches
// the same keep/drop decision without coordination; errored and slow
// traces always export regardless of the sample rate.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
)

// TraceID is the 128-bit identifier shared by every span of one trace,
// across processes.
type TraceID [16]byte

// SpanID is the 64-bit identifier of one span within a trace.
type SpanID [8]byte

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext is the wire-visible identity of one span: the pair a
// traceparent header carries between processes.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// IsZero reports whether either half of the context is missing.
func (sc SpanContext) IsZero() bool { return sc.TraceID.IsZero() || sc.SpanID.IsZero() }

// Header is the W3C Trace Context header name carrying a SpanContext
// between processes.
const Header = "traceparent"

// FormatTraceparent renders sc as a W3C traceparent value:
// 00-<32 hex trace-id>-<16 hex span-id>-01. The sampled flag is always
// set because the export decision is re-derived deterministically from
// the trace ID on every hop (see Tracer's head sampling) rather than
// trusted from the wire.
func FormatTraceparent(sc SpanContext) string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent decodes a traceparent header value. It accepts any
// version except the invalid ff, ignores trailing future-version fields,
// and reports ok=false for malformed or all-zero IDs.
func ParseTraceparent(v string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	if len(parts[0]) != 2 || strings.EqualFold(parts[0], "ff") {
		return SpanContext{}, false
	}
	if _, err := hex.DecodeString(parts[0]); err != nil {
		return SpanContext{}, false
	}
	var sc SpanContext
	if len(parts[1]) != 32 {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(strings.ToLower(parts[1]))); err != nil {
		return SpanContext{}, false
	}
	if len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(strings.ToLower(parts[2]))); err != nil {
		return SpanContext{}, false
	}
	if len(parts[3]) != 2 {
		return SpanContext{}, false
	}
	if _, err := hex.DecodeString(parts[3]); err != nil {
		return SpanContext{}, false
	}
	if sc.IsZero() {
		return SpanContext{}, false
	}
	return sc, true
}

// newTraceID draws a random, non-zero trace ID. Trace identity must be
// unpredictable and collision-free across processes, so this is one of
// the few sanctioned crypto/rand sites (the package is outside the
// determinism lint's scope; IDs never influence mining output).
func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		mustRand(id[:])
	}
	return id
}

// newSpanID draws a random, non-zero span ID.
func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		mustRand(id[:])
	}
	return id
}

// mustRand fills b from crypto/rand. The reader is documented never to
// fail on supported platforms; if it does, the process has no entropy
// and no safe way to hand out identifiers, so fail loudly.
func mustRand(b []byte) {
	if _, err := rand.Read(b); err != nil {
		panic("trace: crypto/rand failed: " + err.Error())
	}
}

// headSampled is the deterministic head-sampling decision: hash-free,
// it reads the trace ID's first 8 bytes as a uniform 64-bit draw and
// keeps the trace when that draw falls under rate. Because the inputs
// are only the (propagated) trace ID and the (configured) rate, every
// process of a distributed trace agrees without coordination.
func headSampled(id TraceID, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	x := binary.BigEndian.Uint64(id[:8])
	return float64(x)/(1<<64) < rate
}
