package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestObserveSpanOverflowDropsOldest pins the recent-span ring contract:
// the ring keeps the newest recentSpanCap records, each overwrite of an
// older record increments wiclean_obs_spans_dropped_total, and the
// survivors are exactly the newest writes.
func TestObserveSpanOverflowDropsOldest(t *testing.T) {
	r := NewRegistry()
	base := time.Unix(1000, 0)
	const extra = 40
	for i := 0; i < recentSpanCap+extra; i++ {
		path := "old"
		if i >= extra {
			path = "new"
		}
		r.ObserveSpan(path, base.Add(time.Duration(i)*time.Second), time.Millisecond, "")
	}
	snap := r.Snapshot()
	if got := snap.Counters[ObsSpansDropped]; got != extra {
		t.Fatalf("%s = %d, want %d", ObsSpansDropped, got, extra)
	}
	if got := len(snap.Recent); got != recentSpanCap {
		t.Fatalf("ring size = %d, want %d", got, recentSpanCap)
	}
	for _, rec := range snap.Recent {
		if rec.Path == "old" {
			t.Fatalf("ring still holds overwritten record started at %v", rec.Start)
		}
	}
	// The aggregate keeps counting past the ring: drops lose the ring
	// entry, never the statistics.
	if snap.Spans["old"].Count != extra || snap.Spans["new"].Count != recentSpanCap {
		t.Fatalf("span aggregates = %+v", snap.Spans)
	}
}

// TestSpanRecordJSONWire pins the wire form: elapsed_ns is an explicit
// integer nanosecond count and trace_id is omitted when empty.
func TestSpanRecordJSONWire(t *testing.T) {
	rec := SpanRecord{
		Path:    "mining.mine",
		Start:   time.Unix(42, 0).UTC(),
		Elapsed: 2500 * time.Microsecond,
		TraceID: "0af7651916cd43dd8448eb211c80319c",
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"elapsed_ns":2500000`) {
		t.Fatalf("elapsed_ns not an explicit integer: %s", b)
	}
	if !strings.Contains(string(b), `"trace_id":"0af7651916cd43dd8448eb211c80319c"`) {
		t.Fatalf("trace_id missing: %s", b)
	}
	var back SpanRecord
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != rec {
		t.Fatalf("round trip = %+v, want %+v", back, rec)
	}

	b, err = json.Marshal(SpanRecord{Path: "p", Start: time.Unix(1, 0).UTC(), Elapsed: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "trace_id") {
		t.Fatalf("empty trace_id must be omitted: %s", b)
	}
}

// TestHistogramExemplars checks that ObserveWithExemplar stamps the
// owning bucket, the snapshot carries it, and WritePrometheus renders
// the OpenMetrics-style exemplar suffix on that bucket line.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)                                         // no exemplar
	h.ObserveWithExemplar(0.05, "aaaa1111")                  // bucket le=0.1
	h.ObserveWithExemplar(0.07, "bbbb2222")                  // same bucket: last write wins
	h.ObserveDurationWithExemplar(5*time.Second, "cccc3333") // +Inf bucket

	hs := r.Snapshot().Histograms["lat_seconds"]
	if len(hs.Exemplars) != len(hs.Counts) {
		t.Fatalf("exemplars len = %d, want %d", len(hs.Exemplars), len(hs.Counts))
	}
	if hs.Exemplars[0].TraceID != "" {
		t.Errorf("bucket 0 exemplar = %+v, want none", hs.Exemplars[0])
	}
	if hs.Exemplars[1].TraceID != "bbbb2222" || hs.Exemplars[1].Value != 0.07 {
		t.Errorf("bucket 1 exemplar = %+v, want latest write bbbb2222", hs.Exemplars[1])
	}
	if hs.Exemplars[3].TraceID != "cccc3333" {
		t.Errorf("+Inf exemplar = %+v", hs.Exemplars[3])
	}

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="bbbb2222"} 0.07`) {
		t.Fatalf("exemplar suffix missing from exposition:\n%s", out)
	}
	if strings.Contains(out, "aaaa1111") {
		t.Fatalf("replaced exemplar still rendered:\n%s", out)
	}

	// Empty trace IDs never record an exemplar (plain Observe path), and
	// the snapshot omits the slice entirely.
	r2 := NewRegistry()
	r2.Histogram("x", []float64{1}).Observe(0.5)
	if ex := r2.Snapshot().Histograms["x"].Exemplars; ex != nil {
		t.Fatalf("plain Observe produced exemplars: %+v", ex)
	}
}
