package obs

// Canonical metric names used across the pipeline. Keeping them in one
// place is the contract between the instrumented packages, the /metrics
// endpoint, the bench report, and the README's operations section.
const (
	// Algorithm 1 (internal/mining).
	MiningPatternsAdmitted = "wiclean_mining_patterns_admitted_total"
	MiningPatternsRejected = "wiclean_mining_patterns_rejected_total"
	MiningCacheHits        = "wiclean_mining_realization_cache_hits_total"
	MiningCandidates       = "wiclean_mining_candidates_total"
	MiningRealizationRows  = "wiclean_mining_realization_rows_total"
	MiningExtendJoins      = "wiclean_mining_extend_joins_total"
	MiningTypePulls        = "wiclean_mining_type_pulls_total"
	MiningEntitiesFetched  = "wiclean_mining_entities_fetched_total"
	MiningActionsIngested  = "wiclean_mining_actions_ingested_total"
	MiningRuns             = "wiclean_mining_runs_total"
	MiningSeconds          = "wiclean_mining_duration_seconds"

	// Intra-window parallel mining (internal/mining join-worker pool).
	MiningJoinWorkers           = "wiclean_mining_join_workers"
	MiningExtendBatches         = "wiclean_mining_extend_batches_total"
	MiningExtendBatchSeconds    = "wiclean_mining_extend_batch_duration_seconds"
	MiningJoinWorkerUtilization = "wiclean_mining_join_worker_utilization_ratio"

	// Relational engine (internal/relational). The join histogram and the
	// planner counter carry a strategy label.
	RelationalJoinSeconds       = "wiclean_relational_join_duration_seconds"
	RelationalPlannerDecisions  = "wiclean_relational_planner_decisions_total"
	RelationalPartitionedProbes = "wiclean_relational_partitioned_probes_total"

	// Columnar engine: interned single-key probes (hash joins whose key is
	// a dictionary ID, probed by exact value instead of FNV fold) and the
	// candidate pairs they surfaced; arena columns report buffer traffic of
	// the join-output arena (reuses = requests served without allocating).
	RelationalInternedProbes    = "wiclean_relational_interned_probes_total"
	RelationalInternedProbeHits = "wiclean_relational_interned_probe_hits_total"
	RelationalArenaColumns      = "wiclean_relational_arena_columns_total"
	RelationalArenaReuses       = "wiclean_relational_arena_reuses_total"

	// Interning dictionaries (internal/intern): distinct strings and
	// payload bytes of the per-miner dictionaries, set at result boundary.
	MiningDictEntries = "wiclean_mining_dict_entries"
	MiningDictBytes   = "wiclean_mining_dict_bytes"

	// Revision-history source layer (internal/source): the on-demand
	// type-history fetch path of §4's Optimization (b) and its resilience
	// stack. Fetches/errors/latency count logical fetches (cache misses,
	// including every retry attempt inside); retries and give-ups come
	// from the backoff middleware; the cache series mirror the LRU of
	// per-type histories shared across windows and refinement iterations.
	SourceFetches        = "wiclean_source_fetches_total"
	SourceFetchErrors    = "wiclean_source_fetch_errors_total"
	SourceFetchSeconds   = "wiclean_source_fetch_duration_seconds"
	SourceRetries        = "wiclean_source_retries_total"
	SourceGiveUps        = "wiclean_source_giveups_total"
	SourceInflight       = "wiclean_source_inflight_fetches"
	SourceCacheHits      = "wiclean_source_cache_hits_total"
	SourceCacheMisses    = "wiclean_source_cache_misses_total"
	SourceCacheCoalesced = "wiclean_source_cache_coalesced_total"
	SourceCacheEvictions = "wiclean_source_cache_evictions_total"
	SourceCacheActions   = "wiclean_source_cache_actions"
	SourceCacheTypes     = "wiclean_source_cache_types"
	SourceFaultsInjected = "wiclean_source_faults_injected_total"

	// Algorithm 2 (internal/windows). The merge histogram times the
	// window-ordered fold of per-step results into the outcome — the
	// deterministic merge the distributed coordinator reuses.
	WindowsRefinementSteps = "wiclean_windows_refinement_steps_total"
	WindowsMined           = "wiclean_windows_mined_total"
	WindowsDiscovered      = "wiclean_windows_patterns_discovered_total"
	WindowsMineSeconds     = "wiclean_windows_mine_duration_seconds"
	WindowsMergeSeconds    = "wiclean_windows_merge_duration_seconds"
	WindowsWidthDays       = "wiclean_windows_width_days"
	WindowsTau             = "wiclean_windows_tau"

	// Distributed window-mining coordinator (internal/coord). Dispatched
	// counts window jobs handed to workers (attempts, so dispatched −
	// redispatched = jobs that succeeded first try); redispatched counts
	// re-routed attempts after a worker fault or timeout; merged counts
	// results folded back into the refinement walk. Rejects counts
	// fingerprint-mismatched workers quarantined by the provenance check.
	// The latency histogram carries a worker label.
	CoordWindowsDispatched   = "wiclean_coord_windows_dispatched_total"
	CoordWindowsRedispatched = "wiclean_coord_windows_redispatched_total"
	CoordWindowsMerged       = "wiclean_coord_windows_merged_total"
	CoordWorkerRejects       = "wiclean_coord_worker_rejects_total"
	CoordWorkerSeconds       = "wiclean_coord_worker_duration_seconds"
	CoordMineRequests        = "wiclean_coord_mine_requests_total"
	CoordMineErrors          = "wiclean_coord_mine_errors_total"

	// Algorithm 3 (internal/detect).
	DetectRuns        = "wiclean_detect_runs_total"
	DetectRowsScanned = "wiclean_detect_rows_scanned_total"
	DetectPartials    = "wiclean_detect_partials_total"
	DetectFull        = "wiclean_detect_full_realizations_total"
	DetectSeconds     = "wiclean_detect_duration_seconds"

	// Edit assistance (internal/assist). The index series describe the
	// (op, label, source-type) → patterns inverted index the assistant
	// probes per live edit instead of scanning the full pattern list.
	AssistRequests        = "wiclean_assist_requests_total"
	AssistAdvices         = "wiclean_assist_advices_total"
	AssistSuggestSeconds  = "wiclean_assist_suggest_duration_seconds"
	AssistIndexKeys       = "wiclean_assist_index_keys"
	AssistIndexEntries    = "wiclean_assist_index_entries"
	AssistIndexProbes     = "wiclean_assist_index_probes_total"
	AssistIndexCandidates = "wiclean_assist_index_candidates_total"

	// Model store & warm start (internal/model): persisted pattern models
	// and the Algorithm 2 refinement checkpoints. Byte counters track the
	// serialized size; the gauge reports the pattern count of the last
	// model written or read.
	ModelSaves        = "wiclean_model_saves_total"
	ModelLoads        = "wiclean_model_loads_total"
	ModelSaveBytes    = "wiclean_model_save_bytes_total"
	ModelLoadBytes    = "wiclean_model_load_bytes_total"
	ModelSaveSeconds  = "wiclean_model_save_duration_seconds"
	ModelLoadSeconds  = "wiclean_model_load_duration_seconds"
	ModelPatterns     = "wiclean_model_patterns"
	CheckpointSaves   = "wiclean_checkpoint_saves_total"
	CheckpointBytes   = "wiclean_checkpoint_bytes_total"
	CheckpointSeconds = "wiclean_checkpoint_save_duration_seconds"
	CheckpointResumes = "wiclean_checkpoint_resumes_total"

	// HTTP surface (internal/plugin). Both carry a path label; the
	// request counter adds a status-class code label. Panics counts
	// requests answered 500 by the recover middleware. Shed counts
	// requests answered 429 by the serving-layer admission path and
	// carries a reason label ("rate" = per-client token bucket,
	// "queue" = bounded accept queue full).
	HTTPRequests       = "wiclean_http_requests_total"
	HTTPRequestSeconds = "wiclean_http_request_duration_seconds"
	HTTPPanics         = "wiclean_http_panics_total"
	HTTPShed           = "wiclean_http_shed_total"

	// High-QPS serving layer (internal/plugin): the per-client token-bucket
	// limiter and the bounded accept queue in front of /suggest. Allowed and
	// limited partition limiter decisions; the clients gauge tracks resident
	// buckets (bounded by the limiter's MaxClients); queue depth is the
	// number of admitted in-flight /suggest computations.
	LimiterAllowed    = "wiclean_limiter_allowed_total"
	LimiterLimited    = "wiclean_limiter_limited_total"
	LimiterClients    = "wiclean_limiter_clients"
	LimiterQueueDepth = "wiclean_limiter_queue_depth"

	// Layered /suggest response cache (internal/plugin): hits/misses count
	// lookups against the memory tier; disk hits count misses served (and
	// promoted) from the disk tier; evictions/bytes/entries describe the
	// memory tier; coalesced counts requests that waited on another
	// identical in-flight computation instead of recomputing.
	SuggestCacheHits      = "wiclean_suggest_cache_hits_total"
	SuggestCacheMisses    = "wiclean_suggest_cache_misses_total"
	SuggestCacheDiskHits  = "wiclean_suggest_cache_disk_hits_total"
	SuggestCacheEvictions = "wiclean_suggest_cache_evictions_total"
	SuggestCacheBytes     = "wiclean_suggest_cache_bytes"
	SuggestCacheEntries   = "wiclean_suggest_cache_entries"
	SuggestCoalesced      = "wiclean_suggest_coalesced_total"

	// SIGHUP model hot reload (internal/plugin): swaps partition into
	// successes and failures (a failed reload keeps serving the old
	// model); the histogram times the rebuild (detect + assistant index).
	ReloadTotal   = "wiclean_reload_total"
	ReloadErrors  = "wiclean_reload_errors_total"
	ReloadSeconds = "wiclean_reload_duration_seconds"

	// Span aggregates render under this summary name with a span label.
	SpanSeconds = "wiclean_span_duration_seconds"

	// Observability internals: recent-span ring overflow (the ring keeps
	// the newest recentSpanCap spans; every overwrite of an older record
	// increments the counter).
	ObsSpansDropped = "wiclean_obs_spans_dropped_total"

	// Request-scoped tracing (internal/obs/trace). Started counts roots
	// opened in this process; exported/sampled-out partition completed
	// traces by the export decision; spans counts every ended trace span.
	TracesStarted    = "wiclean_traces_started_total"
	TracesExported   = "wiclean_traces_exported_total"
	TracesSampledOut = "wiclean_traces_sampled_out_total"
	TraceSpans       = "wiclean_trace_spans_total"
)
