package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("same name should return the same counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestConcurrentCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r.Counter("shared_total").Inc()
				r.Gauge("level").Add(1)
				r.Histogram("h", CountBuckets).Observe(float64(j % 7))
				sp := r.Span("work")
				sp.Child("inner").End()
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	want := int64(goroutines * per)
	if got := r.Counter("shared_total").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("level").Value(); got != float64(want) {
		t.Errorf("gauge = %v, want %d", got, want)
	}
	h := r.Histogram("h", nil)
	if got := h.Count(); got != uint64(want) {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var bucketSum uint64
	s := r.Snapshot()
	for _, c := range s.Histograms["h"].Counts {
		bucketSum += c
	}
	if bucketSum != uint64(want) {
		t.Errorf("bucket total = %d, want %d", bucketSum, want)
	}
	if s.Spans["work"].Count != want || s.Spans["work/inner"].Count != want {
		t.Errorf("span counts = %+v, want %d each", s.Spans, want)
	}
}

func TestSnapshotStability(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(1.25)
	r.Histogram("c_seconds", DurationBuckets).Observe(0.003)
	r.Span("s").End()

	s1, s2 := r.Snapshot(), r.Snapshot()
	// Quiesced registry: repeated snapshots must agree exactly.
	j1, _ := json.Marshal(s1)
	j2, _ := json.Marshal(s2)
	if string(j1) != string(j2) {
		t.Fatalf("snapshots differ:\n%s\n%s", j1, j2)
	}
	var back Snapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatalf("snapshot JSON round-trip: %v", err)
	}
	if !reflect.DeepEqual(back.Counters, s1.Counters) {
		t.Fatalf("counters round-trip: %v vs %v", back.Counters, s1.Counters)
	}

	var p1, p2 strings.Builder
	_ = s1.WritePrometheus(&p1)
	_ = s2.WritePrometheus(&p2)
	if p1.String() != p2.String() {
		t.Fatal("prometheus rendering is not deterministic")
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Add(7)
	r.Counter(Labeled("req_total", "path", "/a", "code", "2xx")).Add(2)
	r.Gauge("width_days").Set(14)
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(5)
	hl := r.Histogram(Labeled("lab_seconds", "path", "/a"), []float64{1})
	hl.Observe(0.5)
	r.Span("mine").End()

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE x_total counter",
		"x_total 7",
		`req_total{path="/a",code="2xx"} 2`,
		"# TYPE width_days gauge",
		"width_days 14",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.505",
		"lat_seconds_count 3",
		`lab_seconds_bucket{path="/a",le="1"} 1`,
		`lab_seconds_bucket{path="/a",le="+Inf"} 1`,
		`lab_seconds_sum{path="/a"} 0.5`,
		`lab_seconds_count{path="/a"} 1`,
		"# TYPE wiclean_span_duration_seconds summary",
		`wiclean_span_duration_seconds_count{span="mine"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(10)
	if r.Counter("x").Value() != 0 {
		t.Error("nil counter should read 0")
	}
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(1)
	if r.Gauge("g").Value() != 0 {
		t.Error("nil gauge should read 0")
	}
	h := r.Histogram("h", DurationBuckets)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram should read 0")
	}
	sp := r.Span("s").Child("c")
	if sp.End() != 0 {
		t.Error("nil span End should return 0")
	}
	ran := false
	r.Time("t", func() { ran = true })
	if !ran {
		t.Error("Time must run f on a nil registry")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Spans) != 0 {
		t.Error("nil snapshot should be empty")
	}
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("nil MetricsHandler status = %d", rec.Code)
	}
}

func TestHTTPMiddleware(t *testing.T) {
	r := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprint(w, "ok") })
	mux.HandleFunc("/fail", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	})
	h := r.HTTPMiddleware(mux, "/ok", "/fail", "/debug/")
	ts := httptest.NewServer(h)
	defer ts.Close()

	for _, path := range []string{"/ok", "/ok", "/fail", "/unknown", "/debug/pprof/x"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	checks := map[string]int64{
		Labeled(HTTPRequests, "path", "/ok", "code", "2xx"):     2,
		Labeled(HTTPRequests, "path", "/fail", "code", "5xx"):   1,
		Labeled(HTTPRequests, "path", "other", "code", "4xx"):   1,
		Labeled(HTTPRequests, "path", "/debug/", "code", "4xx"): 1,
	}
	for name, want := range checks {
		if got := r.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := r.Histogram(Labeled(HTTPRequestSeconds, "path", "/ok"), nil).Count(); got != 2 {
		t.Errorf("latency histogram count = %d, want 2", got)
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	root := r.Span("outer")
	child := root.Child("inner")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	s := r.Snapshot()
	if s.Spans["outer"].Count != 1 || s.Spans["outer/inner"].Count != 1 {
		t.Fatalf("span paths = %v", s.Spans)
	}
	if s.Spans["outer"].TotalSeconds < s.Spans["outer/inner"].TotalSeconds {
		t.Error("outer span should dominate its child")
	}
	if len(s.Recent) != 2 {
		t.Fatalf("recent ring = %d records, want 2", len(s.Recent))
	}
}

func TestRecentSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < recentSpanCap+50; i++ {
		r.Span("s").End()
	}
	if got := len(r.Snapshot().Recent); got != recentSpanCap {
		t.Fatalf("ring size = %d, want %d", got, recentSpanCap)
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled("m"); got != "m" {
		t.Errorf("Labeled no pairs = %q", got)
	}
	got := Labeled("m", "a", `x"y`, "b", `p\q`)
	want := `m{a="x\"y",b="p\\q"}`
	if got != want {
		t.Errorf("Labeled = %q, want %q", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 10 observations: 4 in (0, 1], 4 in (1, 2], 2 in (2, +Inf).
	filled := HistogramSnapshot{
		Bounds: []float64{1, 2},
		Counts: []uint64{4, 4, 2},
		Count:  10,
		Sum:    14,
	}
	empty := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 0, 0}}
	malformed := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{4}, Count: 4}

	tests := []struct {
		name string
		h    HistogramSnapshot
		q    float64
		want float64
	}{
		{"median", filled, 0.5, 1.25},
		{"p90-clamps-to-top-bound", filled, 0.9, 2},
		{"q0", filled, 0, 0},
		{"q1-inf-bucket-clamps", filled, 1, 2},
		{"q-below-range-clamps", filled, -3, 0},
		{"q-above-range-clamps", filled, 7, 2},
		{"q-nan-clamps-to-zero", filled, math.NaN(), 0},
		{"empty-histogram", empty, 0.5, 0},
		{"empty-histogram-q1", empty, 1, 0},
		{"malformed-counts", malformed, 0.5, 0},
		{"zero-value", HistogramSnapshot{}, 0.5, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.h.Quantile(tc.q)
			if math.IsNaN(got) || math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestHistogramQuantileLiveRegistry(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", []float64{0.1, 1, 10})
	// Empty live histogram is total too.
	if got := r.Snapshot().Histograms["q_seconds"].Quantile(0.99); got != 0 {
		t.Fatalf("empty live histogram Quantile = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	got := r.Snapshot().Histograms["q_seconds"].Quantile(0.5)
	if got <= 0.1 || got > 1 {
		t.Errorf("median of 0.5s observations = %v, want within (0.1, 1]", got)
	}
}
