package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed, strictly increasing bucket
// upper bounds, Prometheus-style: counts[i] is the number of observations
// v <= bounds[i]; the final slot is the implicit +Inf bucket. Sum and
// Count accumulate alongside. All updates are atomic and lock-free.
//
// Each bucket additionally holds at most one exemplar — the trace ID and
// value of the latest observation recorded through ObserveWithExemplar —
// linking a /metrics latency tail to a concrete trace in the trace ring
// or JSONL export (OpenMetrics-style exemplar linkage).
type Histogram struct {
	bounds    []float64
	buckets   []atomic.Uint64 // len(bounds)+1; last is +Inf
	count     atomic.Uint64
	sumBits   atomic.Uint64              // float64 bits, CAS-accumulated
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1; last write wins
}

// Exemplar ties one observed value to the trace it came from.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// DurationBuckets are the default latency bounds, in seconds.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// CountBuckets are roughly log-scaled bounds for size-like observations
// (rows joined, candidates scanned, ...).
var CountBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000, 25000}

// RatioBuckets are linear bounds for [0, 1] observations such as worker
// utilization.
var RatioBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	return &Histogram{
		bounds:    bs,
		buckets:   make([]atomic.Uint64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// Observe records one observation; nil-safe.
func (h *Histogram) Observe(v float64) { h.ObserveWithExemplar(v, "") }

// ObserveWithExemplar records one observation and, when traceID is
// non-empty, stamps it (with the value) as the owning bucket's exemplar,
// replacing any earlier one. Nil-safe.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records d in seconds; nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveDurationWithExemplar records d in seconds with a trace-ID
// exemplar; nil-safe.
func (h *Histogram) ObserveDurationWithExemplar(d time.Duration, traceID string) {
	h.ObserveWithExemplar(d.Seconds(), traceID)
}

// Count returns the total number of observations; nil-safe (0).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values; nil-safe (0).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Histogram returns (creating on first use) the named histogram with the
// given bucket bounds; bounds are fixed by the first caller. A nil
// registry returns a nil, no-op histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}
