// Package obs is WiClean's dependency-free observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms, plus
// named span timers with parent/child nesting for lightweight tracing.
//
// The whole surface is nil-safe: every method on a nil *Registry (and on
// the nil metric handles it returns) is a no-op, so instrumented packages
// call it unconditionally and library users who never attach a registry
// pay nothing beyond a nil check. A populated registry serializes to JSON
// (Snapshot) and to the Prometheus text exposition format
// (WritePrometheus); see the HTTP helpers for the /metrics endpoint and
// the per-endpoint middleware.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is a valid no-op sink.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanStat

	recent    []SpanRecord // ring buffer of finished spans
	recentPos int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*spanStat{},
		recent:   make([]SpanRecord, 0, recentSpanCap),
	}
}

// recentSpanCap bounds the finished-span ring buffer: the registry keeps
// the newest recentSpanCap SpanRecords, and once the ring is full every
// new span overwrites the oldest record and increments the
// ObsSpansDropped counter. Snapshot.Recent therefore always holds the
// most recent spans, never an unbounded history.
const recentSpanCap = 256

// Counter is a monotonically increasing atomic counter.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by delta; nil-safe.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.n.Add(delta)
	}
}

// Inc increments the counter by one; nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; nil-safe (0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an atomically updated float64 level.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v; nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta; nil-safe.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current level; nil-safe (0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Counter returns (creating on first use) the named counter. A nil
// registry returns a nil, no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge. A nil registry
// returns a nil, no-op gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}
