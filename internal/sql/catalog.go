package sql

import (
	"fmt"
	"sort"
	"strings"

	"wiclean/internal/action"
	"wiclean/internal/dump"
	"wiclean/internal/relational"
	"wiclean/internal/taxonomy"
)

// taxID converts an engine value back to an entity handle.
func taxID(v relational.Value) taxonomy.EntityID { return taxonomy.EntityID(v) }

// Dict interns strings as dense int32 values so string-valued attributes
// (relation labels) can live in the engine's integer tables.
type Dict struct {
	byName map[string]relational.Value
	names  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byName: map[string]relational.Value{}}
}

// ID interns s.
func (d *Dict) ID(s string) relational.Value {
	if v, ok := d.byName[s]; ok {
		return v
	}
	v := relational.Value(len(d.names))
	d.byName[s] = v
	d.names = append(d.names, s)
	return v
}

// Lookup returns the id of an already-interned string.
func (d *Dict) Lookup(s string) (relational.Value, bool) {
	v, ok := d.byName[s]
	return v, ok
}

// Name returns the string for an id, or "" when out of range or null.
func (d *Dict) Name(v relational.Value) string {
	if v < 0 || int(v) >= len(d.names) {
		return ""
	}
	return d.names[int(v)]
}

// Len returns the number of interned strings.
func (d *Dict) Len() int { return len(d.names) }

// Database is a queryable view of a revision history: the actions relation
// plus the label dictionary needed to render results.
type Database struct {
	Catalog Catalog
	Labels  *Dict
	History *dump.History
}

// NewDatabase builds the canonical relations over a history within a
// window:
//
//	actions(op, src, label, dst, t)   op: 1 = add, 0 = remove
//	reduced(op, src, label, dst, t)   the reduced action set of the window
//
// This is the relational face of Figure 1 — the same rows, queryable.
func NewDatabase(h *dump.History, w action.Window) *Database {
	db := &Database{Catalog: Catalog{}, Labels: NewDict(), History: h}
	cols := []string{"op", "src", "label", "dst", "t"}
	raw := relational.NewTable(cols...)
	all := h.AllActions(w)
	for _, a := range all {
		raw.Append(db.row(a))
	}
	red := relational.NewTable(cols...)
	for _, a := range action.Reduce(all) {
		red.Append(db.row(a))
	}
	db.Catalog["actions"] = raw
	db.Catalog["reduced"] = red
	return db
}

func (db *Database) row(a action.Action) relational.Row {
	op := relational.Value(0)
	if a.Op == action.Add {
		op = 1
	}
	return relational.Row{
		op,
		relational.Value(a.Edge.Src),
		db.Labels.ID(string(a.Edge.Label)),
		relational.Value(a.Edge.Dst),
		relational.Value(a.T),
	}
}

// Query runs SQL against the database.
func (db *Database) Query(query string) (*Result, error) {
	return Exec(db.Catalog, query)
}

// Render formats a result with entity and label names resolved: columns
// named src/dst (qualified or not) render entity names, label columns
// render labels, everything else renders numerically. Output rows are
// capped at limit (<=0 = all).
func (db *Database) Render(res *Result, limit int) string {
	reg := db.History.Registry()
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, " | "))
	b.WriteByte('\n')
	for i, row := range res.Table.Rows() {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&b, "... (%d rows)\n", res.Table.Len())
			break
		}
		for j, v := range row {
			if j > 0 {
				b.WriteString(" | ")
			}
			switch {
			case v.IsNull():
				b.WriteString("NULL")
			case strings.HasSuffix(res.Columns[j], "src") || strings.HasSuffix(res.Columns[j], "dst"):
				b.WriteString(reg.Name(taxID(v)))
			case strings.HasSuffix(res.Columns[j], "label"):
				b.WriteString(db.Labels.Name(v))
			default:
				fmt.Fprintf(&b, "%d", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Tables lists the catalog's table names, sorted.
func (db *Database) Tables() []string {
	out := make([]string, 0, len(db.Catalog))
	for name := range db.Catalog {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RenderJoin writes the realization-growing query of §4.2 as SQL text: the
// equijoin on glued variables and the inequality residuals of a fresh
// variable, projected to the pattern's attributes. The miner's EXPLAIN.
func RenderJoin(lName string, lCols []string, rName string, rCols []string, spec relational.JoinSpec) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	first := true
	add := func(s string) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(s)
	}
	for _, i := range spec.LOut {
		add(lName + "." + lCols[i])
	}
	for _, i := range spec.ROut {
		add(rName + "." + rCols[i])
	}
	fmt.Fprintf(&b, " FROM %s JOIN %s ON ", lName, rName)
	firstOn := true
	on := func(s string) {
		if !firstOn {
			b.WriteString(" AND ")
		}
		firstOn = false
		b.WriteString(s)
	}
	for k := range spec.EqL {
		on(fmt.Sprintf("%s.%s = %s.%s", lName, lCols[spec.EqL[k]], rName, rCols[spec.EqR[k]]))
	}
	for k := range spec.NeqL {
		on(fmt.Sprintf("%s.%s <> %s.%s", lName, lCols[spec.NeqL[k]], rName, rCols[spec.NeqR[k]]))
	}
	if firstOn {
		on("1 = 1")
	}
	return b.String()
}
