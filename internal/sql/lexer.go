// Package sql implements the small SQL dialect WiClean's algorithms are
// phrased in. The paper runs "SQL over pandas" as the query engine under
// the miner; this package provides the equivalent layer over the
// relational engine: a lexer, a recursive-descent parser and an executor
// for SELECT queries with (outer) joins, inequality predicates, DISTINCT
// and COUNT(DISTINCT ...) — exactly the query shapes of Algorithms 1 and 3.
// It also renders the miner's realization-growing join specs back into SQL
// text, so every mining step can be explained as the query the paper
// describes.
package sql

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol  // ( ) , . * =
	tokNeq     // <> or !=
	tokKeyword // SELECT FROM WHERE JOIN ON AND AS FULL OUTER DISTINCT COUNT IS NULL NOT
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"AND": true, "AS": true, "FULL": true, "OUTER": true, "DISTINCT": true,
	"COUNT": true, "IS": true, "NULL": true, "NOT": true, "INNER": true,
	"GROUP": true, "BY": true, "ORDER": true,
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes a query. Identifiers are case-preserved; keywords are
// recognized case-insensitively and normalized to upper case.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*' || c == '=':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '<':
			if i+1 < len(input) && input[i+1] == '>' {
				toks = append(toks, token{tokNeq, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '<' at %d (only <> supported)", i)
			}
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokNeq, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at %d", i)
			}
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9'):
			j := i + 1
			for j < len(input) && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < len(input) && isIdentPart(input[j]) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
