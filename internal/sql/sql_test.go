package sql

import (
	"strings"
	"testing"

	"wiclean/internal/action"
	"wiclean/internal/dump"
	"wiclean/internal/relational"
	"wiclean/internal/taxonomy"
)

func testCatalog() Catalog {
	joined := relational.FromRows([]string{"player", "club"}, []relational.Row{
		{1, 100}, {2, 100}, {3, 101}, {4, 102},
	})
	squads := relational.FromRows([]string{"club", "player"}, []relational.Row{
		{100, 1}, {100, 2}, {101, 3},
	})
	return Catalog{"joined": joined, "squads": squads}
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a.b, COUNT(DISTINCT x) FROM t WHERE a <> 3 AND b != -4")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF")
	}
	// Keywords normalized.
	if toks[0].text != "SELECT" {
		t.Errorf("keyword normalization: %q", toks[0].text)
	}
	// Negative number lexed as one token.
	found := false
	for _, tk := range toks {
		if tk.kind == tokNumber && tk.text == "-4" {
			found = true
		}
	}
	if !found {
		t.Error("negative number not lexed")
	}
	_ = kinds
}

func TestLexerErrors(t *testing.T) {
	for _, q := range []string{"a < b", "a ! b", "a § b"} {
		if _, err := lex(q); err == nil {
			t.Errorf("lex(%q) should fail", q)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT * FROM joined",
		"SELECT DISTINCT player FROM joined",
		"SELECT COUNT(DISTINCT j.player) FROM joined AS j",
		"SELECT j.player, s.club FROM joined AS j JOIN squads AS s ON j.player = s.player AND j.club = s.club",
		"SELECT j.player FROM joined AS j FULL OUTER JOIN squads AS s ON j.player = s.player WHERE s.club IS NULL",
		"SELECT player FROM joined WHERE club <> 100 AND player IS NOT NULL",
	}
	for _, q := range queries {
		ast, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		// Reparse the normalized rendering.
		if _, err := Parse(ast.String()); err != nil {
			t.Fatalf("reparse of %q -> %q: %v", q, ast.String(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t JOIN",
		"SELECT * FROM t JOIN u",           // missing ON
		"SELECT * FROM t WHERE",            // missing predicate
		"SELECT * FROM t WHERE a",          // missing comparison
		"SELECT * FROM t trailing garbage", // alias then junk
		"SELECT COUNT(x) FROM t",           // COUNT without DISTINCT
		"SELECT * FROM t WHERE a IS",       // incomplete IS
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestExecProjectionAndWhere(t *testing.T) {
	res, err := Exec(testCatalog(), "SELECT player FROM joined WHERE club = 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 2 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	res, err = Exec(testCatalog(), "SELECT DISTINCT club FROM joined")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 3 {
		t.Fatalf("distinct clubs = %d", res.Table.Len())
	}
}

func TestExecCountDistinct(t *testing.T) {
	res, err := Exec(testCatalog(), "SELECT COUNT(DISTINCT club) FROM joined")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Row(0)[0] != 3 {
		t.Fatalf("count = %v", res.Table.Row(0))
	}
}

func TestExecJoin(t *testing.T) {
	// The realization-growth query: players whose club reciprocated.
	res, err := Exec(testCatalog(),
		"SELECT j.player, j.club FROM joined AS j JOIN squads AS s ON j.player = s.player AND j.club = s.club")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 3 {
		t.Fatalf("complete pairs = %d", res.Table.Len())
	}
}

func TestExecFullOuterJoinNullSelection(t *testing.T) {
	// The Algorithm 3 query: partial realizations via IS NULL.
	res, err := Exec(testCatalog(),
		"SELECT j.player, j.club, s.club FROM joined AS j FULL OUTER JOIN squads AS s "+
			"ON j.player = s.player AND j.club = s.club WHERE s.club IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	// Player 4 joined club 102 with no reciprocation. (Join keys coalesce,
	// so s.club must be the projection of a non-key column... club IS a
	// key; coalescing fills it. Use the row count via the join instead.)
	_ = res
	// Count the partial side by comparing inner and outer cardinalities.
	inner, err := Exec(testCatalog(),
		"SELECT j.player FROM joined AS j JOIN squads AS s ON j.player = s.player AND j.club = s.club")
	if err != nil {
		t.Fatal(err)
	}
	outer, err := Exec(testCatalog(),
		"SELECT j.player FROM joined AS j FULL OUTER JOIN squads AS s ON j.player = s.player AND j.club = s.club")
	if err != nil {
		t.Fatal(err)
	}
	if outer.Table.Len()-inner.Table.Len() != 1 {
		t.Fatalf("expected exactly one partial row: inner %d outer %d",
			inner.Table.Len(), outer.Table.Len())
	}
}

func TestExecInequalityJoin(t *testing.T) {
	res, err := Exec(testCatalog(),
		"SELECT j.player, s.player FROM joined AS j JOIN squads AS s ON j.club = s.club AND j.player <> s.player")
	if err != nil {
		t.Fatal(err)
	}
	// club 100 has players {1,2} on both sides: pairs (1,2),(2,1).
	if res.Table.Len() != 2 {
		t.Fatalf("teammate pairs = %d", res.Table.Len())
	}
}

func TestExecErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM missing",
		"SELECT nosuch FROM joined",
		"SELECT j.player FROM joined AS j JOIN squads AS s ON j.player = nosuch.x",
		"SELECT player, * FROM joined",
		"SELECT club FROM joined AS j JOIN squads AS s ON j.club = s.club", // ambiguous "club"... then unqualified in items
	}
	for _, q := range bad {
		if _, err := Exec(testCatalog(), q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
}

func TestExecUnqualifiedResolution(t *testing.T) {
	// Unambiguous unqualified columns resolve across the join product.
	res, err := Exec(testCatalog(), "SELECT player FROM joined")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 4 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
}

func TestDatabaseOverHistory(t *testing.T) {
	x := taxonomy.New()
	x.AddChain("Person", "FootballPlayer")
	x.AddChain("Organisation", "FootballClub")
	reg := taxonomy.NewRegistry(x)
	p1 := reg.MustAdd("Neymar", "FootballPlayer")
	c1 := reg.MustAdd("PSG", "FootballClub")
	c2 := reg.MustAdd("Barcelona", "FootballClub")
	h := dump.NewHistory(reg)
	h.AddActions(
		action.Action{Op: action.Add, Edge: action.Edge{Src: p1, Label: "current_club", Dst: c1}, T: 10},
		action.Action{Op: action.Remove, Edge: action.Edge{Src: p1, Label: "current_club", Dst: c2}, T: 11},
		// A rumor pair that reduction erases.
		action.Action{Op: action.Add, Edge: action.Edge{Src: p1, Label: "sponsor", Dst: c2}, T: 20},
		action.Action{Op: action.Remove, Edge: action.Edge{Src: p1, Label: "sponsor", Dst: c2}, T: 21},
	)
	db := NewDatabase(h, action.Window{Start: 0, End: 100})
	if got := db.Tables(); len(got) != 2 || got[0] != "actions" || got[1] != "reduced" {
		t.Fatalf("Tables = %v", got)
	}
	res, err := db.Query("SELECT COUNT(DISTINCT src) FROM actions")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Row(0)[0] != 1 {
		t.Fatalf("distinct sources = %v", res.Table.Row(0))
	}
	raw, _ := db.Query("SELECT * FROM actions")
	red, _ := db.Query("SELECT * FROM reduced")
	if raw.Table.Len() != 4 || red.Table.Len() != 2 {
		t.Fatalf("raw %d reduced %d", raw.Table.Len(), red.Table.Len())
	}
	// Label filter via the dictionary.
	id, ok := db.Labels.Lookup("current_club")
	if !ok {
		t.Fatal("label not interned")
	}
	res, err = db.Query("SELECT src, dst FROM reduced WHERE label = " + itoa(int64(id)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 2 {
		t.Fatalf("current_club rows = %d", res.Table.Len())
	}
	out := db.Render(res, 10)
	if !strings.Contains(out, "Neymar") || !strings.Contains(out, "PSG") {
		t.Fatalf("Render = %q", out)
	}
	// Limit respected.
	if got := db.Render(res, 1); strings.Count(got, "Neymar") != 1 {
		t.Fatalf("limited Render = %q", got)
	}
}

func itoa(n int64) string {
	return strings.TrimSpace(strings.ReplaceAll(strings.TrimLeft(
		// small helper avoiding strconv import churn in tests
		sprint(n), "+"), " ", ""))
}

func sprint(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.ID("alpha")
	b := d.ID("beta")
	if d.ID("alpha") != a {
		t.Error("interning must be stable")
	}
	if d.Name(a) != "alpha" || d.Name(b) != "beta" {
		t.Error("Name lookup")
	}
	if d.Name(relational.Null) != "" || d.Name(99) != "" {
		t.Error("out-of-range Name should be empty")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup miss expected")
	}
}

func TestRenderJoinSQL(t *testing.T) {
	spec := relational.JoinSpec{
		EqL: []int{0}, EqR: []int{0},
		NeqL: []int{1}, NeqR: []int{1},
		LOut: []int{0, 1}, ROut: []int{1},
	}
	got := RenderJoin("p", []string{"v0", "v1"}, "a", []string{"src", "dst"}, spec)
	want := "SELECT p.v0, p.v1, a.dst FROM p JOIN a ON p.v0 = a.src AND p.v1 <> a.dst"
	if got != want {
		t.Fatalf("RenderJoin = %q, want %q", got, want)
	}
	// Degenerate cross join renders a tautology.
	cross := RenderJoin("p", []string{"x"}, "a", []string{"y"}, relational.JoinSpec{LOut: []int{0}, ROut: []int{0}})
	if !strings.Contains(cross, "1 = 1") {
		t.Fatalf("cross join = %q", cross)
	}
}

// The SQL layer and the direct engine must agree on the miner's query
// shape: growing a realization table by one action.
func TestSQLMatchesEngineOnGrowthQuery(t *testing.T) {
	realizations := relational.FromRows([]string{"v0", "v1"}, []relational.Row{
		{1, 100}, {2, 101}, {3, 102},
	})
	squads := relational.FromRows([]string{"src", "dst"}, []relational.Row{
		{100, 1}, {101, 9}, {102, 3},
	})
	catalog := Catalog{"p": realizations, "a": squads}
	res, err := Exec(catalog, "SELECT p.v0, p.v1 FROM p JOIN a ON p.v1 = a.src AND p.v0 = a.dst")
	if err != nil {
		t.Fatal(err)
	}
	e := &relational.Engine{}
	direct := e.Join(realizations, squads, relational.JoinSpec{
		EqL: []int{1, 0}, EqR: []int{0, 1}, LOut: []int{0, 1},
	})
	if res.Table.Len() != direct.Len() {
		t.Fatalf("SQL %d rows, engine %d rows", res.Table.Len(), direct.Len())
	}
}

func TestGroupByCount(t *testing.T) {
	res, err := Exec(testCatalog(), "SELECT club, COUNT(*) FROM joined GROUP BY club")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 3 {
		t.Fatalf("groups = %d", res.Table.Len())
	}
	counts := map[relational.Value]relational.Value{}
	for _, row := range res.Table.Rows() {
		counts[row[0]] = row[1]
	}
	if counts[100] != 2 || counts[101] != 1 || counts[102] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestGroupByCountDistinct(t *testing.T) {
	res, err := Exec(testCatalog(), "SELECT club, COUNT(DISTINCT player) FROM joined GROUP BY club")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 3 {
		t.Fatalf("groups = %d", res.Table.Len())
	}
}

func TestCountStarNoGroup(t *testing.T) {
	res, err := Exec(testCatalog(), "SELECT COUNT(*) FROM joined WHERE club = 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Row(0)[0] != 2 {
		t.Fatalf("count = %v", res.Table.Row(0))
	}
}

func TestGroupByErrors(t *testing.T) {
	bad := []string{
		"SELECT player, COUNT(*) FROM joined GROUP BY club", // ungrouped column
		"SELECT * FROM joined GROUP BY club",
		"SELECT nosuch, COUNT(*) FROM joined GROUP BY nosuch",
	}
	for _, q := range bad {
		if _, err := Exec(testCatalog(), q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
	// GROUP BY round-trips through String().
	ast, err := Parse("SELECT club, COUNT(*) FROM joined GROUP BY club")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(ast.String()); err != nil {
		t.Fatalf("reparse %q: %v", ast.String(), err)
	}
}
