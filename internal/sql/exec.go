package sql

import (
	"fmt"

	"wiclean/internal/relational"
)

// Catalog maps table names to relations.
type Catalog map[string]*relational.Table

// Result is a query's output relation plus the column names as projected.
type Result struct {
	Columns []string
	Table   *relational.Table
}

// Exec parses and runs one query against the catalog.
func Exec(catalog Catalog, query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Run(catalog, q)
}

// Run executes a parsed query. Joins are evaluated left to right with the
// relational engine (hash strategy); ON predicates become the engine's
// equality/inequality spec; WHERE is a residual selection; projection,
// DISTINCT and COUNT(DISTINCT ...) finish the plan — the same physical plan
// shape the miner uses for realization tables.
func Run(catalog Catalog, q *Query) (*Result, error) {
	left, err := load(catalog, q.From)
	if err != nil {
		return nil, err
	}
	work := qualify(left, q.Alias)

	// The adaptive planner picks the physical join per query from the
	// input cardinalities, like the miner's engines.
	engine := &relational.Engine{Strategy: relational.AutoStrategy}
	for _, j := range q.Joins {
		right, err := load(catalog, j.Table)
		if err != nil {
			return nil, err
		}
		qr := qualify(right, j.Alias)
		spec, err := buildJoinSpec(work, qr, j.On)
		if err != nil {
			return nil, err
		}
		if j.FullOuter {
			work = engine.FullOuterJoin(work, qr, spec)
		} else {
			work = engine.Join(work, qr, spec)
		}
	}

	if len(q.Where) > 0 {
		pred, err := buildFilter(work, q.Where)
		if err != nil {
			return nil, err
		}
		work = work.Select(pred)
	}

	if len(q.GroupBy) > 0 {
		return runGroupBy(work, q)
	}

	// COUNT(*) without grouping is the row count.
	if len(q.Items) == 1 && q.Items[0].CountStar {
		out := relational.NewTable("count")
		out.Append(relational.Row{relational.Value(work.Len())})
		return &Result{Columns: out.Columns(), Table: out}, nil
	}

	// COUNT(DISTINCT col) short-circuits projection.
	if len(q.Items) == 1 && q.Items[0].CountDistinct {
		col, err := resolve(work, q.Items[0].Column)
		if err != nil {
			return nil, err
		}
		out := relational.NewTable("count")
		out.Append(relational.Row{relational.Value(work.DistinctCount(col))})
		return &Result{Columns: out.Columns(), Table: out}, nil
	}

	var idx []int
	if len(q.Items) == 1 && q.Items[0].Star {
		for i := 0; i < work.Arity(); i++ {
			idx = append(idx, i)
		}
	} else {
		for _, it := range q.Items {
			if it.Star || it.CountDistinct || it.CountStar {
				return nil, fmt.Errorf("sql: *, COUNT(*) and COUNT(DISTINCT) cannot mix with other items")
			}
			col, err := resolve(work, it.Column)
			if err != nil {
				return nil, err
			}
			idx = append(idx, col)
		}
	}
	out := work.Project(idx...)
	if q.Distinct {
		out = out.Dedup()
	}
	return &Result{Columns: out.Columns(), Table: out}, nil
}

func load(catalog Catalog, name string) (*relational.Table, error) {
	t, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", name)
	}
	return t, nil
}

// qualify copies a table with alias-qualified column names ("a.col").
func qualify(t *relational.Table, alias string) *relational.Table {
	cols := make([]string, t.Arity())
	for i, c := range t.Columns() {
		cols[i] = alias + "." + c
	}
	out := relational.FromRows(cols, t.Rows())
	return out
}

// resolve finds the working-table column for a reference; unqualified names
// must be unambiguous.
func resolve(t *relational.Table, ref ColumnRef) (int, error) {
	if ref.Table != "" {
		i := t.ColumnIndex(ref.Table + "." + ref.Column)
		if i < 0 {
			return 0, fmt.Errorf("sql: unknown column %s", ref)
		}
		return i, nil
	}
	found := -1
	for i, c := range t.Columns() {
		if suffixAfterDot(c) == ref.Column {
			if found >= 0 {
				return 0, fmt.Errorf("sql: ambiguous column %q", ref.Column)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %q", ref.Column)
	}
	return found, nil
}

func suffixAfterDot(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

// buildJoinSpec translates ON predicates into the engine's JoinSpec. Each
// equality/inequality must compare one left-side column with one
// right-side column.
func buildJoinSpec(l, r *relational.Table, on []Predicate) (relational.JoinSpec, error) {
	spec := relational.JoinSpec{}
	for _, p := range on {
		if p.IsLiteral || p.Op == "isnull" || p.Op == "notnull" {
			return spec, fmt.Errorf("sql: ON supports only column comparisons, got %s", p)
		}
		li, lerr := resolve(l, p.Left)
		ri, rerr := resolve(r, p.Right)
		if lerr != nil || rerr != nil {
			// Maybe the sides are swapped.
			li2, lerr2 := resolve(l, p.Right)
			ri2, rerr2 := resolve(r, p.Left)
			if lerr2 != nil || rerr2 != nil {
				return spec, fmt.Errorf("sql: ON predicate %s does not bridge the join sides", p)
			}
			li, ri = li2, ri2
		}
		switch p.Op {
		case "=":
			spec.EqL = append(spec.EqL, li)
			spec.EqR = append(spec.EqR, ri)
		case "<>":
			spec.NeqL = append(spec.NeqL, li)
			spec.NeqR = append(spec.NeqR, ri)
		default:
			return spec, fmt.Errorf("sql: unsupported ON operator %q", p.Op)
		}
	}
	for i := 0; i < l.Arity(); i++ {
		spec.LOut = append(spec.LOut, i)
	}
	for i := 0; i < r.Arity(); i++ {
		spec.ROut = append(spec.ROut, i)
	}
	return spec, nil
}

// buildFilter compiles WHERE conjuncts into a row predicate.
func buildFilter(t *relational.Table, where []Predicate) (func(relational.Row) bool, error) {
	type check struct {
		op       string
		li, ri   int
		lit      relational.Value
		literal  bool
		nullTest bool
	}
	var checks []check
	for _, p := range where {
		li, err := resolve(t, p.Left)
		if err != nil {
			return nil, err
		}
		switch {
		case p.Op == "isnull" || p.Op == "notnull":
			checks = append(checks, check{op: p.Op, li: li, nullTest: true})
		case p.IsLiteral:
			checks = append(checks, check{op: p.Op, li: li, lit: relational.Value(p.RightLit), literal: true})
		default:
			ri, err := resolve(t, p.Right)
			if err != nil {
				return nil, err
			}
			checks = append(checks, check{op: p.Op, li: li, ri: ri})
		}
	}
	return func(r relational.Row) bool {
		for _, c := range checks {
			lv := r[c.li]
			switch {
			case c.nullTest:
				if c.op == "isnull" && !lv.IsNull() {
					return false
				}
				if c.op == "notnull" && lv.IsNull() {
					return false
				}
			case c.literal:
				if lv.IsNull() {
					return false
				}
				if c.op == "=" && lv != c.lit {
					return false
				}
				if c.op == "<>" && lv == c.lit {
					return false
				}
			default:
				rv := r[c.ri]
				switch c.op {
				case "=":
					if lv.IsNull() || rv.IsNull() || lv != rv {
						return false
					}
				case "<>":
					if !lv.IsNull() && !rv.IsNull() && lv == rv {
						return false
					}
				}
			}
		}
		return true
	}, nil
}

// runGroupBy evaluates GROUP BY queries. Every non-aggregate select item
// must appear in the GROUP BY list; supported aggregates are COUNT(*) and
// COUNT(DISTINCT col).
func runGroupBy(work *relational.Table, q *Query) (*Result, error) {
	keyCols := make([]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		c, err := resolve(work, g)
		if err != nil {
			return nil, err
		}
		keyCols[i] = c
	}
	inKeys := func(col int) bool {
		for _, k := range keyCols {
			if k == col {
				return true
			}
		}
		return false
	}

	type itemPlan struct {
		keyCol        int // >= 0 for plain grouped columns
		countStar     bool
		distinctCol   int // for COUNT(DISTINCT col)
		countDistinct bool
	}
	var plans []itemPlan
	var outCols []string
	for _, it := range q.Items {
		switch {
		case it.Star:
			return nil, fmt.Errorf("sql: SELECT * with GROUP BY is not supported")
		case it.CountStar:
			plans = append(plans, itemPlan{keyCol: -1, countStar: true})
			outCols = append(outCols, "count")
		case it.CountDistinct:
			c, err := resolve(work, it.Column)
			if err != nil {
				return nil, err
			}
			plans = append(plans, itemPlan{keyCol: -1, countDistinct: true, distinctCol: c})
			outCols = append(outCols, "count_distinct")
		default:
			c, err := resolve(work, it.Column)
			if err != nil {
				return nil, err
			}
			if !inKeys(c) {
				return nil, fmt.Errorf("sql: column %s is neither aggregated nor grouped", it.Column)
			}
			plans = append(plans, itemPlan{keyCol: c})
			outCols = append(outCols, work.Columns()[c])
		}
	}

	type group struct {
		sample   relational.Row
		count    int
		distinct map[relational.Value]bool
	}
	groups := map[uint64][]*group{}
	var order []*group
	for _, row := range work.Rows() {
		h := groupHash(row, keyCols)
		var g *group
		for _, cand := range groups[h] {
			if sameKeys(cand.sample, row, keyCols) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{sample: row.Clone(), distinct: map[relational.Value]bool{}}
			groups[h] = append(groups[h], g)
			order = append(order, g)
		}
		g.count++
		for _, pl := range plans {
			if pl.countDistinct && !row[pl.distinctCol].IsNull() {
				g.distinct[row[pl.distinctCol]] = true
			}
		}
	}

	out := relational.NewTable(outCols...)
	for _, g := range order {
		row := make(relational.Row, 0, len(plans))
		for _, pl := range plans {
			switch {
			case pl.countStar:
				row = append(row, relational.Value(g.count))
			case pl.countDistinct:
				row = append(row, relational.Value(len(g.distinct)))
			default:
				row = append(row, g.sample[pl.keyCol])
			}
		}
		out.Append(row)
	}
	return &Result{Columns: out.Columns(), Table: out}, nil
}

func groupHash(r relational.Row, keys []int) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, k := range keys {
		u := uint32(r[k])
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(u >> shift))
			h *= prime64
		}
	}
	return h
}

func sameKeys(a, b relational.Row, keys []int) bool {
	for _, k := range keys {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}
