package sql

import (
	"fmt"
	"strings"
)

// ColumnRef names a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table  string // alias; empty = unqualified
	Column string
}

// String renders the reference.
func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// SelectItem is one projection item.
type SelectItem struct {
	Star          bool      // SELECT *
	Column        ColumnRef // plain column
	CountDistinct bool      // COUNT(DISTINCT col)
	CountStar     bool      // COUNT(*)
}

// Predicate is one conjunct: col <op> col or col <op> literal, or an
// IS [NOT] NULL test.
type Predicate struct {
	Left      ColumnRef
	Op        string // "=", "<>", "isnull", "notnull"
	Right     ColumnRef
	RightLit  int64
	IsLiteral bool
}

// String renders the predicate.
func (p Predicate) String() string {
	switch p.Op {
	case "isnull":
		return p.Left.String() + " IS NULL"
	case "notnull":
		return p.Left.String() + " IS NOT NULL"
	}
	if p.IsLiteral {
		return fmt.Sprintf("%s %s %d", p.Left, p.Op, p.RightLit)
	}
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// JoinClause is one JOIN step.
type JoinClause struct {
	Table     string
	Alias     string
	FullOuter bool
	On        []Predicate
}

// Query is a parsed SELECT statement.
type Query struct {
	Distinct bool
	Items    []SelectItem
	From     string
	Alias    string
	Joins    []JoinClause
	Where    []Predicate
	GroupBy  []ColumnRef
}

// String renders the query back to SQL text (normalized).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range q.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star:
			b.WriteString("*")
		case it.CountStar:
			b.WriteString("COUNT(*)")
		case it.CountDistinct:
			fmt.Fprintf(&b, "COUNT(DISTINCT %s)", it.Column)
		default:
			b.WriteString(it.Column.String())
		}
	}
	fmt.Fprintf(&b, " FROM %s", q.From)
	if q.Alias != "" && q.Alias != q.From {
		fmt.Fprintf(&b, " AS %s", q.Alias)
	}
	for _, j := range q.Joins {
		if j.FullOuter {
			b.WriteString(" FULL OUTER JOIN ")
		} else {
			b.WriteString(" JOIN ")
		}
		b.WriteString(j.Table)
		if j.Alias != "" && j.Alias != j.Table {
			fmt.Fprintf(&b, " AS %s", j.Alias)
		}
		b.WriteString(" ON ")
		for i, p := range j.On {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}
