package sql

import "fmt"

// Parse parses one SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, fmt.Errorf("sql: expected %s at %d, found %q", want, t.pos, t.text)
	}
	p.i++
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	q.Distinct = p.eat(tokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if !p.eat(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, alias, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	q.From, q.Alias = name, alias

	for {
		full := false
		switch {
		case p.at(tokKeyword, "FULL"):
			p.i++
			p.eat(tokKeyword, "OUTER")
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			full = true
		case p.at(tokKeyword, "INNER"):
			p.i++
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		case p.at(tokKeyword, "JOIN"):
			p.i++
		default:
			goto joinsDone
		}
		{
			name, alias, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			preds, err := p.parsePredicates()
			if err != nil {
				return nil, err
			}
			q.Joins = append(q.Joins, JoinClause{Table: name, Alias: alias, FullOuter: full, On: preds})
		}
	}
joinsDone:
	if p.eat(tokKeyword, "WHERE") {
		preds, err := p.parsePredicates()
		if err != nil {
			return nil, err
		}
		q.Where = preds
	}
	if p.eat(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if !p.eat(tokSymbol, ",") {
				break
			}
		}
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.eat(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	if p.eat(tokKeyword, "COUNT") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return SelectItem{}, err
		}
		if p.eat(tokSymbol, "*") {
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{CountStar: true}, nil
		}
		if _, err := p.expect(tokKeyword, "DISTINCT"); err != nil {
			return SelectItem{}, err
		}
		col, err := p.parseColumnRef()
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{CountDistinct: true, Column: col}, nil
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Column: col}, nil
}

func (p *parser) parseTableRef() (name, alias string, err error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", "", err
	}
	name, alias = t.text, t.text
	if p.eat(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return "", "", err
		}
		alias = a.text
	} else if p.at(tokIdent, "") {
		alias = p.cur().text
		p.i++
	}
	return name, alias, nil
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return ColumnRef{}, err
	}
	if p.eat(tokSymbol, ".") {
		c, err := p.expect(tokIdent, "")
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: t.text, Column: c.text}, nil
	}
	return ColumnRef{Column: t.text}, nil
}

func (p *parser) parsePredicates() ([]Predicate, error) {
	var preds []Predicate
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		if !p.eat(tokKeyword, "AND") {
			break
		}
	}
	return preds, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	left, err := p.parseColumnRef()
	if err != nil {
		return Predicate{}, err
	}
	if p.eat(tokKeyword, "IS") {
		if p.eat(tokKeyword, "NOT") {
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return Predicate{}, err
			}
			return Predicate{Left: left, Op: "notnull"}, nil
		}
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return Predicate{}, err
		}
		return Predicate{Left: left, Op: "isnull"}, nil
	}
	op := ""
	switch {
	case p.eat(tokSymbol, "="):
		op = "="
	case p.eat(tokNeq, ""):
		op = "<>"
	default:
		return Predicate{}, fmt.Errorf("sql: expected comparison at %d, found %q", p.cur().pos, p.cur().text)
	}
	if p.at(tokNumber, "") {
		t := p.cur()
		p.i++
		var n int64
		if _, err := fmt.Sscanf(t.text, "%d", &n); err != nil {
			return Predicate{}, fmt.Errorf("sql: bad number %q at %d", t.text, t.pos)
		}
		return Predicate{Left: left, Op: op, RightLit: n, IsLiteral: true}, nil
	}
	right, err := p.parseColumnRef()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Left: left, Op: op, Right: right}, nil
}
