package wikitext

import (
	"reflect"
	"strings"
	"testing"
)

const neymarRev1 = `{{Infobox football biography
| name = Neymar
| current_club = [[Barcelona F.C.]]
| league = [[La Liga]]
| birth_place = [[Mogi das Cruzes]]
}}

'''Neymar''' is a Brazilian footballer who plays for [[Barcelona F.C.|Barça]].
See also [[Category:Brazilian footballers]].
`

const neymarRev2 = `{{Infobox football biography
| name = Neymar
| current_club = [[PSG F.C.|Paris Saint-Germain]]
| league = [[Ligue 1]]
| birth_place = [[Mogi das Cruzes]]
}}

'''Neymar''' is a Brazilian footballer. He moved in [[2017]].
`

func TestParseInfoboxBasic(t *testing.T) {
	box, ok := ParseInfobox(neymarRev1)
	if !ok {
		t.Fatal("infobox not found")
	}
	if box.Type != "football biography" {
		t.Errorf("Type = %q", box.Type)
	}
	if len(box.Fields) != 4 {
		t.Fatalf("Fields = %v", box.Fields)
	}
	if box.Fields[1].Name != "current_club" || !strings.Contains(box.Fields[1].Value, "Barcelona") {
		t.Errorf("field 1 = %+v", box.Fields[1])
	}
}

func TestParseInfoboxMissing(t *testing.T) {
	if _, ok := ParseInfobox("just some '''text''' with [[Links]]"); ok {
		t.Fatal("no infobox expected")
	}
	if _, ok := ParseInfobox("{{Infobox broken"); ok {
		t.Fatal("unbalanced infobox must not parse")
	}
	if _, ok := ParseInfobox(""); ok {
		t.Fatal("empty text")
	}
}

func TestParseInfoboxNestedTemplates(t *testing.T) {
	text := `{{Infobox club
| name = PSG
| ground = {{small|[[Parc des Princes]]}}
| manager = [[Thomas Tuchel]]
}}`
	box, ok := ParseInfobox(text)
	if !ok {
		t.Fatal("infobox not found")
	}
	if len(box.Fields) != 3 {
		t.Fatalf("Fields = %+v", box.Fields)
	}
	links := StructuredLinks(text)
	found := false
	for _, l := range links {
		if l.Relation == "ground" && l.Target == "Parc des Princes" {
			found = true
		}
	}
	if !found {
		t.Fatalf("nested template link not extracted: %v", links)
	}
}

func TestSplitTopLevelRespectsSpans(t *testing.T) {
	parts := splitTopLevel("a|[[X|Y]]|{{t|u}}|b", '|')
	if len(parts) != 4 {
		t.Fatalf("parts = %q", parts)
	}
	if parts[1] != "[[X|Y]]" || parts[2] != "{{t|u}}" {
		t.Fatalf("parts = %q", parts)
	}
}

func TestExtractWikiLinks(t *testing.T) {
	got := ExtractWikiLinks("[[A]] text [[B|bee]] [[C#Section]] [[File:x.jpg]] [[]] [[ D ]]")
	want := []string{"A", "B", "C", "D"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractWikiLinks = %v, want %v", got, want)
	}
	if got := ExtractWikiLinks("no links"); got != nil {
		t.Fatalf("no links expected, got %v", got)
	}
	if got := ExtractWikiLinks("[[unclosed"); got != nil {
		t.Fatalf("unclosed link: %v", got)
	}
}

func TestNormalizeRelation(t *testing.T) {
	cases := map[string]string{
		"current_club": "current_club",
		"Current Club": "current_club",
		"squad1":       "squad",
		"squad23":      "squad",
		" league ":     "league",
		"42":           "", // all digits strip to nothing
	}
	for in, want := range cases {
		if got := NormalizeRelation(in); got != want {
			t.Errorf("NormalizeRelation(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStructuredLinksIgnoresProse(t *testing.T) {
	links := StructuredLinks(neymarRev1)
	if len(links) != 3 {
		t.Fatalf("links = %v", links)
	}
	for _, l := range links {
		if l.Target == "Barça" || strings.HasPrefix(l.Target, "Category") {
			t.Errorf("prose/namespace link leaked: %v", l)
		}
	}
	// Sorted by relation then target.
	for i := 1; i < len(links); i++ {
		if links[i-1].Relation > links[i].Relation {
			t.Fatal("links not sorted")
		}
	}
}

func TestStructuredLinksNoInfobox(t *testing.T) {
	if got := StructuredLinks("prose with [[Link]]"); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
}

func TestStructuredLinksDedup(t *testing.T) {
	text := `{{Infobox club
| squad1 = [[Player A]]
| squad2 = [[Player A]]
}}`
	links := StructuredLinks(text)
	if len(links) != 1 {
		t.Fatalf("duplicate links not collapsed: %v", links)
	}
}

func TestDiffTransfer(t *testing.T) {
	d := Diff(neymarRev1, neymarRev2)
	wantAdded := []Link{{"current_club", "PSG F.C."}, {"league", "Ligue 1"}}
	wantRemoved := []Link{{"current_club", "Barcelona F.C."}, {"league", "La Liga"}}
	if !reflect.DeepEqual(d.Added, wantAdded) {
		t.Errorf("Added = %v, want %v", d.Added, wantAdded)
	}
	if !reflect.DeepEqual(d.Removed, wantRemoved) {
		t.Errorf("Removed = %v, want %v", d.Removed, wantRemoved)
	}
}

func TestDiffIdenticalAndEmpty(t *testing.T) {
	d := Diff(neymarRev1, neymarRev1)
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("self diff = %+v", d)
	}
	d = Diff("", neymarRev1)
	if len(d.Added) != 3 || len(d.Removed) != 0 {
		t.Fatalf("diff from empty = %+v", d)
	}
	d = Diff(neymarRev1, "")
	if len(d.Added) != 0 || len(d.Removed) != 3 {
		t.Fatalf("diff to empty = %+v", d)
	}
}

func TestRenderInfoboxRoundTrip(t *testing.T) {
	links := []Link{
		{"current_club", "PSG F.C."},
		{"squad", "Neymar"},
		{"squad", "Kylian Mbappe"},
		{"league", "Ligue 1"},
	}
	text := RenderInfobox("football club", links)
	got := StructuredLinks(text)
	if len(got) != 4 {
		t.Fatalf("round trip = %v", got)
	}
	want := map[Link]bool{}
	for _, l := range links {
		want[l] = true
	}
	for _, l := range got {
		if !want[l] {
			t.Errorf("unexpected link after round trip: %v", l)
		}
	}
}

func TestRenderArticleParsesCleanly(t *testing.T) {
	links := []Link{{"current_club", "PSG F.C."}}
	text := RenderArticle("Neymar", "football biography", links)
	got := StructuredLinks(text)
	if len(got) != 1 || got[0] != links[0] {
		t.Fatalf("RenderArticle links = %v", got)
	}
}

// Property: render → parse is the identity on normalized link sets, across
// varied relation/target shapes.
func TestRenderParseRoundTripProperty(t *testing.T) {
	rels := []string{"current_club", "squad", "award", "member"}
	targets := []string{"Alpha", "Beta Club", "Gamma F.C.", "Delta (politician)"}
	seed := uint64(17)
	next := func(n int) int {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return int(seed % uint64(n))
	}
	for trial := 0; trial < 100; trial++ {
		n := next(6) + 1
		set := map[Link]bool{}
		for i := 0; i < n; i++ {
			set[Link{Relation: rels[next(len(rels))], Target: targets[next(len(targets))]}] = true
		}
		var links []Link
		for l := range set {
			links = append(links, l)
		}
		got := StructuredLinks(RenderInfobox("thing", links))
		if len(got) != len(set) {
			t.Fatalf("trial %d: %d links in, %d out (%v vs %v)", trial, len(set), len(got), links, got)
		}
		for _, l := range got {
			if !set[l] {
				t.Fatalf("trial %d: unexpected link %v", trial, l)
			}
		}
	}
}
