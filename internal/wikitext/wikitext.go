// Package wikitext implements the slice of MediaWiki markup WiClean needs:
// parsing infoboxes out of article revisions, extracting the typed
// inter-links they carry, and diffing consecutive revisions of an article
// into link add/remove actions.
//
// The paper extracts actions from crawled revision histories of the
// structured sections of Wikipedia ("such as infoboxes and tables", §1);
// this package is that extraction pipeline. Free-text links are
// deliberately ignored — the paper's future-work section leaves free text
// out of scope.
package wikitext

import (
	"sort"
	"strings"
)

// Link is one structured link: the infobox field it appears under (the
// relation label) and the target article title.
type Link struct {
	Relation string
	Target   string
}

// Infobox is a parsed {{Infobox ...}} template: its declared type and its
// fields in document order.
type Infobox struct {
	Type   string
	Fields []Field
}

// Field is one "| name = value" infobox parameter.
type Field struct {
	Name  string
	Value string
}

// ParseInfobox locates the first {{Infobox ...}} template in the revision
// text and parses it. The bool result reports whether an infobox was found.
// Nested templates inside field values are balanced over, not interpreted.
func ParseInfobox(text string) (Infobox, bool) {
	lower := strings.ToLower(text)
	start := strings.Index(lower, "{{infobox")
	if start < 0 {
		return Infobox{}, false
	}
	// Find the matching close, counting {{ }} nesting.
	depth := 0
	end := -1
	for i := start; i < len(text)-1; i++ {
		switch {
		case text[i] == '{' && text[i+1] == '{':
			depth++
			i++
		case text[i] == '}' && text[i+1] == '}':
			depth--
			i++
			if depth == 0 {
				end = i + 1
			}
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return Infobox{}, false
	}
	body := text[start+2 : end-2] // inside the outer braces

	// Split on top-level pipes only (pipes inside [[..]] or {{..}} belong
	// to the value).
	parts := splitTopLevel(body, '|')
	box := Infobox{}
	if len(parts) > 0 {
		// "Infobox football biography" -> type "football biography".
		head := strings.TrimSpace(parts[0])
		box.Type = strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(head, "Infobox"), "infobox"))
		if strings.HasPrefix(strings.ToLower(head), "infobox") {
			box.Type = strings.TrimSpace(head[len("infobox"):])
		}
	}
	for _, part := range parts[1:] {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			continue // positional parameter; infobox links are named
		}
		name := strings.TrimSpace(part[:eq])
		value := strings.TrimSpace(part[eq+1:])
		if name == "" {
			continue
		}
		box.Fields = append(box.Fields, Field{Name: name, Value: value})
	}
	return box, true
}

// splitTopLevel splits s on sep occurrences that are outside [[...]] and
// {{...}} spans.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	var brackets, braces int
	last := 0
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) {
			switch {
			case s[i] == '[' && s[i+1] == '[':
				brackets++
				i++
				continue
			case s[i] == ']' && s[i+1] == ']':
				if brackets > 0 {
					brackets--
				}
				i++
				continue
			case s[i] == '{' && s[i+1] == '{':
				braces++
				i++
				continue
			case s[i] == '}' && s[i+1] == '}':
				if braces > 0 {
					braces--
				}
				i++
				continue
			}
		}
		if s[i] == sep && brackets == 0 && braces == 0 {
			parts = append(parts, s[last:i])
			last = i + 1
		}
	}
	parts = append(parts, s[last:])
	return parts
}

// ExtractWikiLinks returns the [[Target]] / [[Target|display]] link targets
// in s, in order of appearance. Targets are trimmed; section anchors
// ("Article#Section") are stripped to the article title; empty targets and
// non-article namespaces (File:, Category:, ...) are dropped.
func ExtractWikiLinks(s string) []string {
	var out []string
	for i := 0; i+1 < len(s); i++ {
		if s[i] != '[' || s[i+1] != '[' {
			continue
		}
		end := strings.Index(s[i+2:], "]]")
		if end < 0 {
			break
		}
		inner := s[i+2 : i+2+end]
		i = i + 2 + end + 1
		if bar := strings.IndexByte(inner, '|'); bar >= 0 {
			inner = inner[:bar]
		}
		if hash := strings.IndexByte(inner, '#'); hash >= 0 {
			inner = inner[:hash]
		}
		inner = strings.TrimSpace(inner)
		if inner == "" {
			continue
		}
		if ns := strings.IndexByte(inner, ':'); ns > 0 {
			continue // File:, Category:, Template:, interwiki, ...
		}
		out = append(out, inner)
	}
	return out
}

// NormalizeRelation maps an infobox field name to a relation label:
// lower-cased, spaces collapsed to underscores, trailing list indices
// stripped so that "squad1", "squad2" unify to "squad".
func NormalizeRelation(field string) string {
	f := strings.ToLower(strings.TrimSpace(field))
	f = strings.ReplaceAll(f, " ", "_")
	// Strip a trailing numeric list index.
	end := len(f)
	for end > 0 && f[end-1] >= '0' && f[end-1] <= '9' {
		end--
	}
	return f[:end]
}

// StructuredLinks extracts every (relation, target) pair from the infobox
// of a revision text. It returns nil when the revision has no infobox.
// Duplicate pairs are collapsed (a field linking the same article twice is
// one relationship) and the result is sorted for determinism.
func StructuredLinks(text string) []Link {
	box, ok := ParseInfobox(text)
	if !ok {
		return nil
	}
	seen := map[Link]bool{}
	var out []Link
	for _, f := range box.Fields {
		rel := NormalizeRelation(f.Name)
		if rel == "" {
			continue
		}
		for _, target := range ExtractWikiLinks(f.Value) {
			l := Link{Relation: rel, Target: target}
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relation != out[j].Relation {
			return out[i].Relation < out[j].Relation
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// LinkDiff is the structured-link delta between two revisions.
type LinkDiff struct {
	Added   []Link
	Removed []Link
}

// Diff computes the structured links (infobox and table) added and removed
// between the prev and cur revision texts of the same article. Both sides
// are sorted.
func Diff(prev, cur string) LinkDiff {
	pl := AllStructuredLinks(prev)
	cl := AllStructuredLinks(cur)
	pset := make(map[Link]bool, len(pl))
	for _, l := range pl {
		pset[l] = true
	}
	cset := make(map[Link]bool, len(cl))
	for _, l := range cl {
		cset[l] = true
	}
	var d LinkDiff
	for _, l := range cl {
		if !pset[l] {
			d.Added = append(d.Added, l)
		}
	}
	for _, l := range pl {
		if !cset[l] {
			d.Removed = append(d.Removed, l)
		}
	}
	return d
}
