package wikitext

import "strings"

// WikiTable is a parsed {| ... |} table: its caption and the link targets
// per row. Club squad lists, season tables and award registries — the
// "tables" half of the paper's "structured sections (such as infoboxes and
// tables)" — are encoded this way on Wikipedia.
type WikiTable struct {
	Caption string
	Rows    [][]string // link targets per row
}

// ParseTables extracts every top-level wiki table from the revision text.
// Syntax handled: "{|" ... "|}" blocks, "|+" captions, "|-" row
// separators, "|" and "||" cells, "!" header cells (ignored for links).
func ParseTables(text string) []WikiTable {
	var out []WikiTable
	lines := strings.Split(text, "\n")
	i := 0
	for i < len(lines) {
		if !strings.HasPrefix(strings.TrimSpace(lines[i]), "{|") {
			i++
			continue
		}
		table := WikiTable{}
		var row []string
		flushRow := func() {
			if len(row) > 0 {
				table.Rows = append(table.Rows, row)
				row = nil
			}
		}
		i++
		for i < len(lines) {
			line := strings.TrimSpace(lines[i])
			switch {
			case strings.HasPrefix(line, "|}"):
				flushRow()
				out = append(out, table)
				i++
				goto next
			case strings.HasPrefix(line, "|+"):
				table.Caption = strings.TrimSpace(line[2:])
			case strings.HasPrefix(line, "|-"):
				flushRow()
			case strings.HasPrefix(line, "!"):
				// header cells carry no structured links
			case strings.HasPrefix(line, "|"):
				for _, cell := range strings.Split(line[1:], "||") {
					row = append(row, ExtractWikiLinks(cell)...)
				}
			}
			i++
		}
		// Unterminated table: keep what was parsed.
		flushRow()
		out = append(out, table)
	next:
	}
	return out
}

// TableLinks extracts (relation, target) pairs from the revision's wiki
// tables: the table caption, normalized, is the relation each linked row
// participates in (a club page's "Current squad" table links its players
// under the squad relation). Captionless tables are skipped — without a
// caption the relation is undefined.
func TableLinks(text string) []Link {
	seen := map[Link]bool{}
	var out []Link
	for _, table := range ParseTables(text) {
		rel := NormalizeRelation(table.Caption)
		if rel == "" {
			continue
		}
		for _, row := range table.Rows {
			for _, target := range row {
				l := Link{Relation: rel, Target: target}
				if !seen[l] {
					seen[l] = true
					out = append(out, l)
				}
			}
		}
	}
	return out
}

// AllStructuredLinks unions the infobox and table links of a revision —
// the full structured-link extraction of the paper's preprocessing.
func AllStructuredLinks(text string) []Link {
	links := StructuredLinks(text)
	seen := make(map[Link]bool, len(links))
	for _, l := range links {
		seen[l] = true
	}
	for _, l := range TableLinks(text) {
		if !seen[l] {
			seen[l] = true
			links = append(links, l)
		}
	}
	return links
}
