package wikitext

import (
	"fmt"
	"sort"
	"strings"
)

// RenderInfobox produces wikitext for an infobox holding the given
// (relation, targets) structured links, plus arbitrary surrounding prose.
// It is the inverse of StructuredLinks up to field ordering and is used by
// the synthetic dump generator so that the parse-and-diff pipeline is
// exercised end to end:
//
//	StructuredLinks(RenderInfobox(boxType, links)) == normalize(links)
//
// Multi-valued relations are rendered as numbered fields (squad1, squad2,
// ...) the way Wikipedia infoboxes commonly encode lists, which
// NormalizeRelation folds back together.
func RenderInfobox(boxType string, links []Link) string {
	byRel := map[string][]string{}
	var rels []string
	for _, l := range links {
		if _, ok := byRel[l.Relation]; !ok {
			rels = append(rels, l.Relation)
		}
		byRel[l.Relation] = append(byRel[l.Relation], l.Target)
	}
	sort.Strings(rels)

	var b strings.Builder
	fmt.Fprintf(&b, "{{Infobox %s\n", boxType)
	for _, rel := range rels {
		targets := byRel[rel]
		sort.Strings(targets)
		if len(targets) == 1 {
			fmt.Fprintf(&b, "| %s = [[%s]]\n", rel, targets[0])
			continue
		}
		for i, t := range targets {
			fmt.Fprintf(&b, "| %s%d = [[%s]]\n", rel, i+1, t)
		}
	}
	b.WriteString("}}\n")
	return b.String()
}

// RenderArticle wraps an infobox with lead prose so parsed revisions look
// like real article bodies (free-text links must be ignored by extraction).
func RenderArticle(title, boxType string, links []Link) string {
	var b strings.Builder
	b.WriteString(RenderInfobox(boxType, links))
	fmt.Fprintf(&b, "\n'''%s''' is an article in the synthetic encyclopedia. ", title)
	b.WriteString("It mentions [[Some Unrelated Article]] in passing, and links a ")
	b.WriteString("[[File:Photo.jpg|thumb|photo]] that extraction must skip.\n")
	return b.String()
}
