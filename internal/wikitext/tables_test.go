package wikitext

import (
	"reflect"
	"testing"
)

const squadTable = `
'''PSG F.C.''' is a club.

{| class="wikitable"
|+ Current squad
|-
! No. !! Player
|-
| 10 || [[Neymar]]
|-
| 7 || [[Kylian Mbappe]]
|}

{| class="wikitable"
|+ Former squad
|-
| [[Zlatan Ibrahimovic]]
|}
`

func TestParseTables(t *testing.T) {
	tables := ParseTables(squadTable)
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	if tables[0].Caption != "Current squad" {
		t.Errorf("caption = %q", tables[0].Caption)
	}
	if len(tables[0].Rows) != 2 {
		t.Fatalf("rows = %v", tables[0].Rows)
	}
	if tables[0].Rows[0][0] != "Neymar" {
		t.Errorf("row 0 = %v", tables[0].Rows[0])
	}
	if tables[1].Rows[0][0] != "Zlatan Ibrahimovic" {
		t.Errorf("second table = %v", tables[1].Rows)
	}
}

func TestParseTablesUnterminated(t *testing.T) {
	tables := ParseTables("{|\n|+ Cap\n|-\n| [[X]]\n")
	if len(tables) != 1 || len(tables[0].Rows) != 1 {
		t.Fatalf("unterminated = %v", tables)
	}
}

func TestParseTablesNone(t *testing.T) {
	if got := ParseTables("no tables here, just | pipes"); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestTableLinks(t *testing.T) {
	links := TableLinks(squadTable)
	want := []Link{
		{Relation: "current_squad", Target: "Neymar"},
		{Relation: "current_squad", Target: "Kylian Mbappe"},
		{Relation: "former_squad", Target: "Zlatan Ibrahimovic"},
	}
	if !reflect.DeepEqual(links, want) {
		t.Fatalf("TableLinks = %v, want %v", links, want)
	}
}

func TestTableLinksSkipsCaptionless(t *testing.T) {
	text := "{|\n|-\n| [[X]]\n|}"
	if got := TableLinks(text); got != nil {
		t.Fatalf("captionless table leaked: %v", got)
	}
}

func TestAllStructuredLinksUnionsInfoboxAndTables(t *testing.T) {
	text := `{{Infobox club
| league = [[Ligue 1]]
}}
{| class="wikitable"
|+ Current squad
|-
| [[Neymar]]
|}`
	links := AllStructuredLinks(text)
	if len(links) != 2 {
		t.Fatalf("links = %v", links)
	}
	rels := map[string]bool{}
	for _, l := range links {
		rels[l.Relation] = true
	}
	if !rels["league"] || !rels["current_squad"] {
		t.Fatalf("relations = %v", rels)
	}
}

func TestTableCellsSplitOnDoublePipe(t *testing.T) {
	text := "{|\n|+ row\n|-\n| [[A]] || [[B]] || plain\n|}"
	tables := ParseTables(text)
	if len(tables) != 1 {
		t.Fatal("one table expected")
	}
	if !reflect.DeepEqual(tables[0].Rows[0], []string{"A", "B"}) {
		t.Fatalf("cells = %v", tables[0].Rows[0])
	}
}
