package synth

import (
	"fmt"

	"wiclean/internal/action"
	"wiclean/internal/taxonomy"
)

// PoolSpec sizes one entity pool of a domain relative to the seed count.
type PoolSpec struct {
	Type   taxonomy.Type
	Prefix string
	Size   func(seeds int) int
}

// Domain bundles a taxonomy, entity pools, and the scenario catalog — the
// catalog doubles as the expert ground-truth pattern list of §6.3.
type Domain struct {
	Name     string
	SeedType taxonomy.Type
	// SeedSubTypes optionally diversifies seed entities across subtypes of
	// SeedType (every n-th seed gets the subtype), exercising the type
	// hierarchy the way real players include goalkeepers.
	SeedSubType      taxonomy.Type
	SeedSubTypeEvery int

	Taxonomy func() *taxonomy.Taxonomy
	Pools    []PoolSpec
	Catalog  []Scenario

	// NoiseLabels are relation labels used by uncoordinated lone edits.
	NoiseLabels []action.Label

	// ExpectedMissed is how many catalog entries are window-less by design
	// and expected to escape window-based mining (2 soccer, 1 cinema, 1
	// politics in the paper's recall numbers).
	ExpectedMissed int
}

func atLeast(min int, frac float64) func(int) int {
	return func(seeds int) int {
		n := int(float64(seeds) * frac)
		if n < min {
			return min
		}
		return n
	}
}

// Soccer returns the soccer domain: players as seeds, clubs, leagues,
// national teams, awards — 11 catalog scenarios of which 2 are window-less.
func Soccer() Domain {
	tax := func() *taxonomy.Taxonomy {
		x := taxonomy.New()
		x.AddChain("Agent", "Person", "Athlete", "FootballPlayer", "Goalkeeper")
		x.AddChain("Agent", "Organisation", "SportsTeam", "FootballClub")
		x.AddChain("Agent", "Organisation", "SportsTeam", "NationalFootballTeam")
		x.AddChain("Agent", "Organisation", "SportsLeague")
		x.AddChain("Work", "Award")
		x.AddChain("Place", "Stadium")
		return x
	}
	W := action.Week
	return Domain{
		Name:             "soccer",
		SeedType:         "FootballPlayer",
		SeedSubType:      "Goalkeeper",
		SeedSubTypeEvery: 10,
		Taxonomy:         tax,
		// Pool sizes model that the seed set is a sparse sample of a much
		// larger population: hub pages (clubs, awards, teams) that edit many
		// seed entities in one window would otherwise make cross-seed
		// co-occurrence patterns frequent at the refinement floor τ = 0.2,
		// which real sampled seed sets do not exhibit.
		Pools: []PoolSpec{
			{Type: "FootballClub", Prefix: "Club", Size: atLeast(24, 8.0)},
			{Type: "FootballPlayer", Prefix: "VeteranPlayer", Size: atLeast(12, 1.0)},
			{Type: "NationalFootballTeam", Prefix: "NationalTeam", Size: atLeast(10, 1.5)},
			{Type: "SportsLeague", Prefix: "League", Size: atLeast(4, 0.02)},
			{Type: "Award", Prefix: "SoccerAward", Size: atLeast(16, 4.0)},
			{Type: "Stadium", Prefix: "Stadium", Size: atLeast(8, 0.10)},
		},
		NoiseLabels: []action.Label{"current_club", "squad", "sponsor", "website", "birth_place"},
		Catalog: []Scenario{
			// The three transfer entries model ONE event population: every
			// transfer performs the fast reciprocal pair (player links the
			// club, club adds the player), most also perform the lagging
			// deletions on the old club side, and cross-league moves add
			// the league swap. The experts list all three granularities;
			// only the full event emitter generates instances, and the two
			// Ghost entries are its sub-patterns, discovered at narrower
			// windows / higher thresholds exactly as §6.3 describes (the
			// simple pattern at frequency ~0.8 in a narrow window, the
			// complex one at ~0.4 in a wider one).
			{
				Name:        "transfer-simple",
				Description: "player joins a club: player links the club, club adds the player to its squad",
				Roles:       []taxonomy.Type{"FootballPlayer", "FootballClub"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "current_club", Dst: 1},
					{Op: action.Add, Src: 1, Label: "squad", Dst: 0},
				},
				WindowWidth: 1 * W, Period: 52 * W, Phase: 4 * W,
				Ghost: true,
			},
			{
				Name:        "transfer-full",
				Description: "full transfer: joins the new club and leaves the old one, both squads updated",
				Roles:       []taxonomy.Type{"FootballPlayer", "FootballClub", "FootballClub"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "current_club", Dst: 1},
					{Op: action.Remove, Src: 0, Label: "current_club", Dst: 2},
					{Op: action.Add, Src: 1, Label: "squad", Dst: 0},
					{Op: action.Remove, Src: 2, Label: "squad", Dst: 0},
				},
				WindowWidth: 2 * W, Period: 52 * W, Phase: 4 * W,
				Ghost: true,
			},
			{
				Name:        "transfer-league",
				Description: "cross-league move: the full transfer plus the league swap on the player page",
				Roles:       []taxonomy.Type{"FootballPlayer", "FootballClub", "FootballClub", "SportsLeague", "SportsLeague"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "current_club", Dst: 1, OmitWeight: 1, TimeLo: 0, TimeHi: 0.4},
					{Op: action.Remove, Src: 0, Label: "current_club", Dst: 2, OmitWeight: 7, TimeLo: 0.2, TimeHi: 1},
					{Op: action.Add, Src: 1, Label: "squad", Dst: 0, OmitWeight: 2, TimeLo: 0, TimeHi: 0.4},
					{Op: action.Remove, Src: 2, Label: "squad", Dst: 0, OmitWeight: 7, TimeLo: 0.2, TimeHi: 1},
					{Op: action.Add, Src: 0, Label: "in_league", Dst: 3, TimeLo: 0, TimeHi: 0.6},
					{Op: action.Remove, Src: 0, Label: "in_league", Dst: 4, TimeLo: 0, TimeHi: 0.6},
				},
				// Same-league moves skip the league swap entirely — a
				// legitimate variation, not an error, which is why partial
				// league edits are so often benign (the paper verified only
				// 14/50 of the relative pattern's signals as real errors).
				SkipGroups:  []SkipGroup{{Steps: []int{4, 5}, Prob: 0.12}},
				WindowWidth: 3 * W, Period: 52 * W, Phase: 4 * W,
				Participation: 0.52, ErrorRate: 0.29,
			},
			{
				Name:        "goal-of-month",
				Description: "goal of the month: winner links the award and the award page links back",
				Roles:       []taxonomy.Type{"FootballPlayer", "Award"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "award", Dst: 1, OmitWeight: 2},
					{Op: action.Add, Src: 1, Label: "winner", Dst: 0, OmitWeight: 3},
				},
				WindowWidth: 1 * W, Period: 4 * W, Phase: 1 * W,
				Participation: 0.030, ErrorRate: 0.10,
			},
			{
				Name:        "captaincy-change",
				Description: "new captain: player marks the club, club swaps its captain link",
				Roles:       []taxonomy.Type{"FootballPlayer", "FootballClub", "FootballPlayer"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "captain_of", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "captain", Dst: 0, OmitWeight: 2},
					{Op: action.Remove, Src: 1, Label: "captain", Dst: 2, OmitWeight: 4},
				},
				WindowWidth: 1 * W, Period: 52 * W, Phase: 6 * W,
				Participation: 0.30, ErrorRate: 0.14,
			},
			{
				Name:        "national-team-callup",
				Description: "call-up: player links the national team, squad list gains the player",
				Roles:       []taxonomy.Type{"FootballPlayer", "NationalFootballTeam"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "national_team", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "squad", Dst: 0, OmitWeight: 3},
				},
				WindowWidth: 1 * W, Period: 26 * W, Phase: 2 * W,
				Participation: 0.13, ErrorRate: 0.10,
			},
			{
				Name:        "loan-move",
				Description: "loan: player links the borrowing club, club lists the loanee",
				Roles:       []taxonomy.Type{"FootballPlayer", "FootballClub"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "on_loan_at", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "loan_squad", Dst: 0, OmitWeight: 3},
				},
				WindowWidth: 1 * W, Period: 52 * W, Phase: 5 * W,
				Participation: 0.30, ErrorRate: 0.12,
			},
			{
				Name:        "retirement",
				Description: "retirement: player marks the club retired from, club moves the player off the squad",
				Roles:       []taxonomy.Type{"FootballPlayer", "FootballClub"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "retired_from", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "former_squad", Dst: 0, OmitWeight: 4},
				},
				WindowWidth: 2 * W, Period: 52 * W, Phase: 8 * W,
				Participation: 0.32, ErrorRate: 0.12,
			},
			{
				Name:        "player-of-month",
				Description: "player of the month: honour on the player page, awardee on the award page",
				Roles:       []taxonomy.Type{"FootballPlayer", "Award"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "honour", Dst: 1, OmitWeight: 2},
					{Op: action.Add, Src: 1, Label: "awarded_to", Dst: 0, OmitWeight: 3},
				},
				WindowWidth: 1 * W, Period: 4 * W, Phase: 2 * W,
				Participation: 0.030, ErrorRate: 0.10,
			},
			{
				Name:        "testimonial-match",
				Description: "testimonial match honours (window-less: spread across the year)",
				Roles:       []taxonomy.Type{"FootballPlayer", "FootballClub"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "testimonial", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "honours", Dst: 0, OmitWeight: 2},
				},
				WindowWidth: 1 * W, Period: 0,
				Participation: 0.15, ErrorRate: 0.10,
			},
			{
				Name:        "squad-number-change",
				Description: "jersey number reassignment (window-less: spread across the year)",
				Roles:       []taxonomy.Type{"FootballPlayer", "FootballClub"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "squad_number_at", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "number_assignment", Dst: 0, OmitWeight: 2},
				},
				WindowWidth: 1 * W, Period: 0,
				Participation: 0.15, ErrorRate: 0.10,
			},
		},
		ExpectedMissed: 2,
	}
}

// Cinematography returns the cinema domain: actors as seeds, films, series,
// awards, studios — 8 catalog scenarios of which 1 is window-less.
func Cinematography() Domain {
	tax := func() *taxonomy.Taxonomy {
		x := taxonomy.New()
		x.AddChain("Agent", "Person", "Artist", "Actor", "VoiceActor")
		x.AddChain("Work", "Film")
		x.AddChain("Work", "TelevisionShow", "TVSeries")
		x.AddChain("Work", "Award")
		x.AddChain("Agent", "Organisation", "Company", "Studio")
		return x
	}
	W := action.Week
	return Domain{
		Name:             "cinematography",
		SeedType:         "Actor",
		SeedSubType:      "VoiceActor",
		SeedSubTypeEvery: 12,
		Taxonomy:         tax,
		Pools: []PoolSpec{
			{Type: "Film", Prefix: "Film", Size: atLeast(20, 5.0)},
			{Type: "TVSeries", Prefix: "Series", Size: atLeast(16, 5.0)},
			{Type: "Award", Prefix: "FilmAward", Size: atLeast(16, 4.0)},
			{Type: "Studio", Prefix: "Studio", Size: atLeast(10, 1.2)},
		},
		NoiseLabels: []action.Label{"filmography", "starring", "producer", "website", "spouse"},
		Catalog: []Scenario{
			// oscar-win / festival-award and film-release / sequel-casting
			// model aliasing families the same way as the soccer transfers:
			// one emitter per family (award wins sometimes credit the
			// awarded film; releases are sometimes sequels), with the
			// narrower expert pattern as a Ghost sub-pattern. Emitting the
			// sub-population separately would flood the detector with
			// false partials of the wider pattern.
			{
				Name:        "oscar-win",
				Description: "award win: the winner links the award page and vice versa",
				Roles:       []taxonomy.Type{"Actor", "Award"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "award", Dst: 1, OmitWeight: 2},
					{Op: action.Add, Src: 1, Label: "winner", Dst: 0, OmitWeight: 3},
				},
				WindowWidth: 1 * W, Period: 52 * W, Phase: 8 * W,
				Participation: 0.44, ErrorRate: 0.12,
			},
			{
				Name:        "film-release",
				Description: "release: actor filmography gains the film, film cast gains the actor",
				Roles:       []taxonomy.Type{"Actor", "Film"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "filmography", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "starring", Dst: 0, OmitWeight: 3},
				},
				WindowWidth: 2 * W, Period: 52 * W, Phase: 3 * W,
				Participation: 0.48, ErrorRate: 0.10,
			},
			{
				Name:        "festival-award",
				Description: "festival prize: laureate links the prize, the prize page lists laureate and awarded film",
				Roles:       []taxonomy.Type{"Actor", "Award", "Film"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "festival_prize", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "laureate", Dst: 0, OmitWeight: 3},
					{Op: action.Add, Src: 1, Label: "awarded_for", Dst: 2, OmitWeight: 2},
				},
				WindowWidth: 1 * W, Period: 52 * W, Phase: 20 * W,
				Participation: 0.30, ErrorRate: 0.14,
			},
			{
				Name:        "tv-series-join",
				Description: "series casting: actor lists the show, the show lists the actor",
				Roles:       []taxonomy.Type{"Actor", "TVSeries"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "television", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "cast", Dst: 0, OmitWeight: 3},
				},
				WindowWidth: 2 * W, Period: 52 * W, Phase: 2 * W,
				Participation: 0.36, ErrorRate: 0.12,
			},
			{
				Name:        "tv-series-exit",
				Description: "series exit: both pages drop the links",
				Roles:       []taxonomy.Type{"Actor", "TVSeries"},
				Steps: []Step{
					{Op: action.Remove, Src: 0, Label: "television", Dst: 1, OmitWeight: 1},
					{Op: action.Remove, Src: 1, Label: "cast", Dst: 0, OmitWeight: 4},
				},
				WindowWidth: 2 * W, Period: 52 * W, Phase: 15 * W,
				Participation: 0.30, ErrorRate: 0.14,
			},
			{
				Name:        "studio-contract",
				Description: "studio deal: actor signs, studio lists its talent",
				Roles:       []taxonomy.Type{"Actor", "Studio"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "signed_with", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "talent", Dst: 0, OmitWeight: 3},
				},
				WindowWidth: 2 * W, Period: 52 * W, Phase: 10 * W,
				Participation: 0.28, ErrorRate: 0.12,
			},
			{
				Name:        "sequel-casting",
				Description: "sequel casting: returning actor and the sequel film cross-link, plus the sequel-of link",
				Roles:       []taxonomy.Type{"Actor", "Film", "Film"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "reprises_role", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "returning_cast", Dst: 0, OmitWeight: 3},
					{Op: action.Add, Src: 1, Label: "sequel_to", Dst: 2, OmitWeight: 2},
				},
				WindowWidth: 2 * W, Period: 52 * W, Phase: 6 * W,
				Participation: 0.28, ErrorRate: 0.12,
			},
			{
				Name:        "archive-footage",
				Description: "archive footage credits (window-less: spread across the year)",
				Roles:       []taxonomy.Type{"Actor", "Film"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "archive_footage", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "featuring", Dst: 0, OmitWeight: 2},
				},
				WindowWidth: 1 * W, Period: 0,
				Participation: 0.15, ErrorRate: 0.10,
			},
		},
		ExpectedMissed: 1,
	}
}

// USPoliticians returns the politics domain: senators as seeds, states,
// parties, committees — 5 catalog scenarios of which 1 is window-less.
func USPoliticians() Domain {
	tax := func() *taxonomy.Taxonomy {
		x := taxonomy.New()
		x.AddChain("Agent", "Person", "Politician", "Senator")
		x.AddChain("Place", "AdministrativeRegion", "USState")
		x.AddChain("Agent", "Organisation", "PoliticalParty")
		x.AddChain("Agent", "Organisation", "Committee")
		return x
	}
	W := action.Week
	return Domain{
		Name:     "us-politicians",
		SeedType: "Senator",
		Taxonomy: tax,
		Pools: []PoolSpec{
			{Type: "USState", Prefix: "State", Size: atLeast(12, 2.0)},
			{Type: "PoliticalParty", Prefix: "Party", Size: atLeast(10, 1.2)},
			{Type: "Committee", Prefix: "Committee", Size: atLeast(14, 3.0)},
			// Former senators serve as the "previous senator" role without
			// inflating the seed set.
			{Type: "Senator", Prefix: "FormerSenator", Size: atLeast(12, 1.0)},
		},
		NoiseLabels: []action.Label{"represents", "member_of", "alma_mater", "website", "spouse"},
		Catalog: []Scenario{
			{
				Name: "senator-election",
				Description: "election: new senator and state link each other, the state drops " +
					"the predecessor (who keeps pointing to the state)",
				Roles: []taxonomy.Type{"Senator", "USState", "Senator"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "represents", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "senator", Dst: 0, OmitWeight: 2},
					{Op: action.Remove, Src: 1, Label: "senator", Dst: 2, OmitWeight: 4},
				},
				WindowWidth: 2 * W, Period: 52 * W, Phase: 44 * W,
				Participation: 0.40, ErrorRate: 0.16,
			},
			{
				Name:        "committee-assignment",
				Description: "committee seat: senator and committee pages link each other",
				Roles:       []taxonomy.Type{"Senator", "Committee"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "member_of", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "members", Dst: 0, OmitWeight: 3},
				},
				WindowWidth: 2 * W, Period: 26 * W, Phase: 2 * W,
				Participation: 0.22, ErrorRate: 0.12,
			},
			{
				Name:        "party-switch",
				Description: "party switch: both party pages and the senator page updated",
				Roles:       []taxonomy.Type{"Senator", "PoliticalParty", "PoliticalParty"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "party", Dst: 1, OmitWeight: 1},
					{Op: action.Remove, Src: 0, Label: "party", Dst: 2, OmitWeight: 2},
					{Op: action.Add, Src: 1, Label: "members", Dst: 0, OmitWeight: 2},
					{Op: action.Remove, Src: 2, Label: "members", Dst: 0, OmitWeight: 5},
				},
				WindowWidth: 2 * W, Period: 26 * W, Phase: 8 * W,
				Participation: 0.15, ErrorRate: 0.16,
			},
			{
				Name:        "committee-chair",
				Description: "chairmanship: chair link on the senator, chairperson on the committee",
				Roles:       []taxonomy.Type{"Senator", "Committee"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "chair_of", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "chairperson", Dst: 0, OmitWeight: 3},
				},
				WindowWidth: 1 * W, Period: 52 * W, Phase: 4 * W,
				Participation: 0.30, ErrorRate: 0.12,
			},
			{
				Name:        "constituency-office",
				Description: "constituency office listings (window-less: spread across the year)",
				Roles:       []taxonomy.Type{"Senator", "USState"},
				Steps: []Step{
					{Op: action.Add, Src: 0, Label: "office_in", Dst: 1, OmitWeight: 1},
					{Op: action.Add, Src: 1, Label: "office_of", Dst: 0, OmitWeight: 2},
				},
				WindowWidth: 1 * W, Period: 0,
				Participation: 0.15, ErrorRate: 0.10,
			},
		},
		ExpectedMissed: 1,
	}
}

// Domains lists the three evaluation domains of §6 by name.
func Domains() map[string]Domain {
	return map[string]Domain{
		"soccer":         Soccer(),
		"cinematography": Cinematography(),
		"us-politicians": USPoliticians(),
	}
}

// DomainByName resolves a domain, erroring on unknown names.
func DomainByName(name string) (Domain, error) {
	d, ok := Domains()[name]
	if !ok {
		return Domain{}, fmt.Errorf("synth: unknown domain %q (have soccer, cinematography, us-politicians)", name)
	}
	return d, nil
}
