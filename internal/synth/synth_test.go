package synth

import (
	"testing"

	"wiclean/internal/action"
	"wiclean/internal/dump"
	"wiclean/internal/taxonomy"
)

func TestRandDeterministicAndUniformish(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRand(8)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRand(7).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("different seeds should diverge")
	}
	// Zero seed is remapped, not degenerate.
	z := NewRand(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Fatal("zero seed degenerate")
	}
	// Intn bounds.
	r := NewRand(3)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[r.Intn(5)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn skewed: value %d seen %d/5000", v, c)
		}
	}
	// Float64 in [0,1).
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandPermAndSample(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad perm: %v", p)
		}
		seen[v] = true
	}
	s := r.Sample(10, 3)
	if len(s) != 3 {
		t.Fatalf("Sample = %v", s)
	}
	if got := r.Sample(3, 10); len(got) != 3 {
		t.Fatalf("oversample = %v", got)
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestDomainCatalogsValidate(t *testing.T) {
	for name, d := range Domains() {
		tax := d.Taxonomy()
		if err := tax.Validate(); err != nil {
			t.Fatalf("%s taxonomy: %v", name, err)
		}
		if !tax.Has(d.SeedType) {
			t.Fatalf("%s: seed type missing", name)
		}
		windowless := 0
		for _, sc := range d.Catalog {
			if err := sc.Validate(tax); err != nil {
				t.Errorf("%s/%s: %v", name, sc.Name, err)
			}
			if sc.Period <= 0 {
				windowless++
			}
		}
		if windowless != d.ExpectedMissed {
			t.Errorf("%s: %d window-less scenarios, ExpectedMissed %d", name, windowless, d.ExpectedMissed)
		}
	}
	// Catalog sizes match the paper's expert lists.
	if n := len(Soccer().Catalog); n != 11 {
		t.Errorf("soccer catalog = %d, want 11", n)
	}
	if n := len(Cinematography().Catalog); n != 8 {
		t.Errorf("cinema catalog = %d, want 8", n)
	}
	if n := len(USPoliticians().Catalog); n != 5 {
		t.Errorf("politics catalog = %d, want 5", n)
	}
}

func TestDomainByName(t *testing.T) {
	if _, err := DomainByName("soccer"); err != nil {
		t.Fatal(err)
	}
	if _, err := DomainByName("curling"); err == nil {
		t.Fatal("unknown domain should error")
	}
}

func TestScenarioWindows(t *testing.T) {
	span := action.Window{Start: 0, End: 52 * action.Week}
	sc := Scenario{WindowWidth: action.Week, Period: 26 * action.Week, Phase: 4 * action.Week}
	wins := sc.Windows(span)
	if len(wins) != 2 {
		t.Fatalf("windows = %v", wins)
	}
	if wins[0].Start != 4*action.Week || wins[1].Start != 30*action.Week {
		t.Fatalf("windows = %v", wins)
	}
	for _, w := range wins {
		if w.Width() != action.Week {
			t.Fatalf("width = %v", w)
		}
	}
	// Window-less: one pseudo-window covering the span.
	sc.Period = 0
	wins = sc.Windows(span)
	if len(wins) != 1 || wins[0] != span {
		t.Fatalf("window-less windows = %v", wins)
	}
}

func TestGenerateSmallWorld(t *testing.T) {
	p := DefaultParams(Soccer(), 60)
	w, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Seeds) != 60 {
		t.Fatalf("seeds = %d", len(w.Seeds))
	}
	if w.History.ActionCount() == 0 {
		t.Fatal("no actions generated")
	}
	if len(w.Truth) == 0 {
		t.Fatal("no ground-truth instances")
	}
	stats := w.TruthStats()
	if stats.Errors == 0 {
		t.Fatal("no errors injected")
	}
	if stats.Errors >= stats.Instances/2 {
		t.Fatalf("error rate implausible: %+v", stats)
	}
	if stats.Corrected == 0 || stats.Corrected >= stats.Errors {
		t.Fatalf("corrections implausible: %+v", stats)
	}
	if w.Noise == 0 {
		t.Fatal("no noise emitted")
	}
	// Corrections land after the span.
	next := w.NextYear.AllActions(action.Window{Start: 0, End: 10 * action.Year})
	for _, a := range next {
		if a.T < w.Span.End {
			t.Fatalf("correction inside the span: %v", a)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams(USPoliticians(), 40)
	w1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if w1.History.ActionCount() != w2.History.ActionCount() {
		t.Fatal("same seed must generate identical histories")
	}
	if len(w1.Truth) != len(w2.Truth) {
		t.Fatal("truth diverged")
	}
	for i := range w1.Truth {
		if w1.Truth[i].Scenario != w2.Truth[i].Scenario ||
			w1.Truth[i].Window != w2.Truth[i].Window ||
			len(w1.Truth[i].Actions) != len(w2.Truth[i].Actions) {
			t.Fatalf("instance %d diverged", i)
		}
	}
	p.Seed = 99
	w3, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if w3.History.ActionCount() == w1.History.ActionCount() &&
		len(w3.Truth) == len(w1.Truth) &&
		w3.Noise == w1.Noise {
		// Extremely unlikely for all three to coincide with another seed.
		t.Fatal("different seed produced identical world")
	}
}

func TestGenerateValidation(t *testing.T) {
	p := DefaultParams(Soccer(), 0)
	if _, err := Generate(p); err == nil {
		t.Fatal("zero seeds should error")
	}
	bad := DefaultParams(Soccer(), 10)
	bad.Domain.Catalog = append([]Scenario(nil), bad.Domain.Catalog...)
	bad.Domain.Catalog[0].WindowWidth = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("invalid scenario should error")
	}
	bad = DefaultParams(Soccer(), 10)
	bad.Domain.Catalog = append([]Scenario(nil), bad.Domain.Catalog...)
	// Catalog[2] (the transfer emitter) does validate Participation.
	bad.Domain.Catalog[2].Participation = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero participation on an emitter should error")
	}
}

func TestGenerateInstancesRespectWindows(t *testing.T) {
	w, err := Generate(DefaultParams(Cinematography(), 50))
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range w.Truth {
		for _, a := range inst.Actions {
			if !inst.Window.Contains(a.T) {
				t.Fatalf("action %v outside its window %v", a, inst.Window)
			}
		}
	}
}

func TestGenerateRoleDistinctness(t *testing.T) {
	w, err := Generate(DefaultParams(USPoliticians(), 50))
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range w.Truth {
		seen := map[taxonomy.EntityID]bool{}
		for _, e := range inst.Entities {
			if seen[e] {
				t.Fatalf("instance reuses entity %d: %v", e, inst.Entities)
			}
			seen[e] = true
		}
	}
}

func TestBenignPartialsNeverCorrected(t *testing.T) {
	p := DefaultParams(Soccer(), 80)
	p.BenignPartialRate = 0.5
	w, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	benign := 0
	for _, inst := range w.Truth {
		if inst.IsError() && !inst.RealError {
			benign++
			if inst.Corrected {
				t.Fatal("benign partial marked corrected")
			}
		}
	}
	if benign == 0 {
		t.Fatal("expected some benign partials at rate 0.5")
	}
}

func TestCatalogPatternsConnected(t *testing.T) {
	for name, d := range Domains() {
		w, err := Generate(DefaultParams(d, 30))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ps := w.CatalogPatterns()
		if len(ps) != len(d.Catalog) {
			t.Fatalf("%s: CatalogPatterns = %d", name, len(ps))
		}
		tax := w.Reg.Taxonomy()
		for _, ip := range ps {
			if _, ok := ip.Pattern.IsConnected(tax, d.SeedType); !ok {
				t.Errorf("%s/%s: pattern disconnected", name, ip.Name)
			}
		}
	}
}

func TestRevisionDumpRoundTrip(t *testing.T) {
	// Rendering the history as wikitext revisions and re-ingesting them
	// must reproduce the same reduced action sets per entity.
	p := DefaultParams(USPoliticians(), 15)
	p.NoiseRumors = 0.2
	p.NoiseLoneEdits = 0.2
	w, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	revs := w.RevisionDump()
	if len(revs) == 0 {
		t.Fatal("no revisions rendered")
	}
	h := dump.NewHistory(w.Reg)
	if err := h.IngestRevisions(revs); err != nil {
		t.Fatal(err)
	}
	for _, id := range w.History.EntitiesWithActions() {
		want := action.Reduce(w.History.ActionsOf([]taxonomy.EntityID{id}, w.Span))
		got := action.Reduce(h.ActionsOf([]taxonomy.EntityID{id}, w.Span))
		if !action.Equivalent(want, got) {
			t.Fatalf("entity %s: reduced sets differ after dump round trip\nwant %v\ngot  %v",
				w.Reg.Name(id), want, got)
		}
	}
	if h.RevisionsParsed != len(revs) {
		t.Errorf("RevisionsParsed = %d, want %d", h.RevisionsParsed, len(revs))
	}
}

func TestTruthStatsConsistency(t *testing.T) {
	w, err := Generate(DefaultParams(Soccer(), 100))
	if err != nil {
		t.Fatal(err)
	}
	s := w.TruthStats()
	if s.Real+s.Benign != s.Errors {
		t.Fatalf("real %d + benign %d != errors %d", s.Real, s.Benign, s.Errors)
	}
	if s.Corrected > s.Real {
		t.Fatalf("corrected %d > real %d", s.Corrected, s.Real)
	}
	// Correction rate roughly at the configured 0.70.
	rate := float64(s.Corrected) / float64(s.Real)
	if rate < 0.5 || rate > 0.9 {
		t.Errorf("correction rate %.2f far from 0.70 (real=%d)", rate, s.Real)
	}
}
