package synth

import (
	"fmt"

	"wiclean/internal/action"
	"wiclean/internal/pattern"
	"wiclean/internal/taxonomy"
)

// Step is one edit of a scenario, over role indices (role 0 is always the
// seed entity).
type Step struct {
	Op    action.Op
	Src   int // role index of the editing page
	Label action.Label
	Dst   int // role index of the link target
	// OmitWeight biases which steps an erroneous instance leaves out: the
	// classic Wikipedia failure is neglecting the old club's page, so its
	// steps carry the highest weights. Zero-weight steps are never
	// omitted.
	OmitWeight int
	// TimeLo/TimeHi bound the step's timestamp as fractions of the
	// scenario window (both zero = the whole window). Reciprocal edits lag
	// the triggering edit in real histories — that lag is why the simple
	// sub-pattern completes within a narrower window than the full one.
	TimeLo, TimeHi float64
}

// SkipGroup marks steps that one instance performs all-or-nothing, with
// Prob of being skipped entirely. Skipping is legitimate scenario variation
// (a same-league transfer performs no league edits), not an error.
type SkipGroup struct {
	Steps []int
	Prob  float64
}

// Scenario is one ground-truth update pattern: the expert-catalog entry,
// the event generator recipe, and the time-window spec, all in one.
type Scenario struct {
	Name        string
	Description string

	// Roles[0] is the seed type; other roles are drawn from entity pools
	// of the given types, pairwise distinct within an instance.
	Roles []taxonomy.Type
	Steps []Step

	// SkipGroups lists optional step groups (see SkipGroup).
	SkipGroups []SkipGroup

	// Ghost marks a catalog-only entry: the expert lists this pattern, but
	// no instances are emitted for it directly — its realizations arise as
	// sub-patterns of another scenario's instances (the simple transfer
	// pattern is the fast half of the full transfer event).
	Ghost bool

	// WindowWidth is the natural time window in which the scenario's edits
	// complete; edits of one instance are jittered inside it.
	WindowWidth action.Time

	// Period is the recurrence cadence of the scenario's window within the
	// span (e.g. half a year for transfer windows, a month for awards).
	// Period 0 marks a window-less scenario: instances are spread
	// uniformly over the whole span — the kind of pattern the paper notes
	// WiClean misses ("two are not clearly associated with any time
	// window").
	Period action.Time
	// Phase offsets the window start inside each period.
	Phase action.Time

	// Participation is the fraction of the seed set performing the
	// scenario per window occurrence.
	Participation float64

	// ErrorRate is the probability an instance is injected as a partial
	// edit (some steps omitted) — the ground-truth errors.
	ErrorRate float64
}

// Pattern derives the ground-truth abstract pattern from roles and steps.
func (s Scenario) Pattern() pattern.Pattern {
	p := pattern.Pattern{Vars: append([]taxonomy.Type(nil), s.Roles...)}
	for _, st := range s.Steps {
		p.Actions = append(p.Actions, pattern.AbstractAction{
			Op:    st.Op,
			Src:   pattern.VarID(st.Src),
			Label: st.Label,
			Dst:   pattern.VarID(st.Dst),
		})
	}
	return p
}

// Validate checks the scenario is internally consistent and its pattern is
// connected w.r.t. the seed type.
func (s Scenario) Validate(tax *taxonomy.Taxonomy) error {
	if len(s.Roles) == 0 {
		return fmt.Errorf("synth: scenario %q has no roles", s.Name)
	}
	for _, t := range s.Roles {
		if !tax.Has(t) {
			return fmt.Errorf("synth: scenario %q role type %q unknown", s.Name, t)
		}
	}
	if len(s.Steps) == 0 {
		return fmt.Errorf("synth: scenario %q has no steps", s.Name)
	}
	for _, st := range s.Steps {
		if st.Src < 0 || st.Src >= len(s.Roles) || st.Dst < 0 || st.Dst >= len(s.Roles) {
			return fmt.Errorf("synth: scenario %q step references role out of range", s.Name)
		}
	}
	p := s.Pattern()
	if err := p.Validate(); err != nil {
		return fmt.Errorf("synth: scenario %q: %w", s.Name, err)
	}
	if _, ok := p.IsConnected(tax, s.Roles[0]); !ok {
		return fmt.Errorf("synth: scenario %q pattern not connected from seed", s.Name)
	}
	if s.WindowWidth <= 0 {
		return fmt.Errorf("synth: scenario %q WindowWidth <= 0", s.Name)
	}
	for _, g := range s.SkipGroups {
		if g.Prob < 0 || g.Prob >= 1 {
			return fmt.Errorf("synth: scenario %q skip prob %v out of [0, 1)", s.Name, g.Prob)
		}
		for _, i := range g.Steps {
			if i < 0 || i >= len(s.Steps) {
				return fmt.Errorf("synth: scenario %q skip group references step %d", s.Name, i)
			}
		}
	}
	for _, st := range s.Steps {
		if st.TimeLo < 0 || st.TimeHi > 1 || st.TimeLo > st.TimeHi {
			return fmt.Errorf("synth: scenario %q step time bounds [%v, %v] invalid", s.Name, st.TimeLo, st.TimeHi)
		}
	}
	if s.Ghost {
		return nil // catalog-only entries carry no emission parameters
	}
	if s.Participation <= 0 || s.Participation > 1 {
		return fmt.Errorf("synth: scenario %q Participation %v out of (0, 1]", s.Name, s.Participation)
	}
	if s.ErrorRate < 0 || s.ErrorRate >= 1 {
		return fmt.Errorf("synth: scenario %q ErrorRate %v out of [0, 1)", s.Name, s.ErrorRate)
	}
	return nil
}

// Windows enumerates the scenario's occurrence windows inside span. A
// periodic scenario opens one window per period at its phase; a window-less
// scenario reports the whole span as a single pseudo-window.
func (s Scenario) Windows(span action.Window) []action.Window {
	if s.Period <= 0 {
		return []action.Window{span}
	}
	var out []action.Window
	for start := span.Start + s.Phase; start < span.End; start += s.Period {
		end := start + s.WindowWidth
		if end > span.End {
			end = span.End
		}
		if start < end {
			out = append(out, action.Window{Start: start, End: end})
		}
	}
	return out
}

// InjectedInstance records one emitted scenario occurrence: the ground
// truth against which detection quality is scored.
type InjectedInstance struct {
	Scenario int // index into the world's catalog
	Window   action.Window
	Entities []taxonomy.EntityID // one per role
	Actions  []action.Action     // the emitted edits
	Omitted  []action.Action     // the edits left out (non-empty = injected error)
	// Skipped holds the edits withheld by a skip group — legitimate
	// variation, not errors. Signals explained by a skipped edit are
	// benign (the paper's same-league transfers whose league "omission"
	// is correct).
	Skipped []action.Action

	// Validation ground truth for the §6.3 protocol:
	Corrected bool // the next-year log completes the omitted edits
	RealError bool // a (simulated) domain expert confirms it as an error
}

// IsError reports whether the instance was injected as a partial edit.
func (inst *InjectedInstance) IsError() bool { return len(inst.Omitted) > 0 }
