package synth

import (
	"fmt"
	"sort"

	"wiclean/internal/action"
	"wiclean/internal/dump"
	"wiclean/internal/pattern"
	"wiclean/internal/taxonomy"
	"wiclean/internal/wikitext"
)

// Params configures world generation.
type Params struct {
	Seed         uint64
	Domain       Domain
	SeedEntities int

	// Span is the simulated revision year; zero means [0, Year).
	Span action.Window

	// NoiseRumors is the expected number of add-then-revert rumor pairs
	// per seed entity over the span (the Figure-1 R=0 rows).
	NoiseRumors float64
	// NoiseLoneEdits is the expected number of uncoordinated single edits
	// per seed entity over the span; these masquerade as partial patterns
	// and are the source of unverifiable signals in §6.3.
	NoiseLoneEdits float64

	// CorrectionRate is the share of injected errors the next-year log
	// fixes (the paper observed ≈70% corrected in 2019).
	CorrectionRate float64

	// BenignPartialRate is the probability that an injected partial edit
	// is actually fine (e.g. a same-league transfer legitimately skips the
	// league update); benign partials are never corrected and a simulated
	// expert rejects them.
	BenignPartialRate float64

	// MaxScenariosPerSeed caps how many distinct scenarios one seed entity
	// participates in over the span (<=0 = 2; DefaultParams sets 6 so that
	// draws stay near-independent while extreme configs remain bounded). Real entities rarely star
	// in several update patterns in one year; without the cap, independent
	// scenario sampling would make joint "pattern A and pattern B"
	// combinations frequent at wide windows, which real data does not
	// exhibit.
	MaxScenariosPerSeed int

	// Distractors sizes a population of entities from unrelated types
	// (musicians and their albums, here) that edit each other during the
	// span, as a fraction of the seed count per pool. Wikipedia's edits
	// graph is dominated by such unrelated activity — it is exactly what
	// the full-graph mining variants must materialize and the incremental
	// construction never touches (the §6.2 small-data experiment).
	Distractors float64
	// DistractorEdits is the expected number of edits per distractor
	// entity over the span.
	DistractorEdits float64
}

// DefaultParams returns the calibrated generation defaults.
func DefaultParams(d Domain, seeds int) Params {
	return Params{
		Seed:                1,
		Domain:              d,
		SeedEntities:        seeds,
		Span:                action.Window{Start: 0, End: action.Year},
		NoiseRumors:         1.0,
		NoiseLoneEdits:      0.10,
		CorrectionRate:      0.70,
		BenignPartialRate:   0.05,
		MaxScenariosPerSeed: 6,
		Distractors:         0.5,
		DistractorEdits:     4.0,
	}
}

// World is a generated universe: registry, revision history, ground truth.
type World struct {
	Domain   Domain
	Reg      *taxonomy.Registry
	History  *dump.History
	NextYear *dump.History // the simulated following-year corrections
	Seeds    []taxonomy.EntityID
	Span     action.Window
	Truth    []InjectedInstance
	Noise    int // noise actions emitted

	seedSet map[taxonomy.EntityID]bool // lazy cache for rolePool
}

// Generate builds a world from the parameters.
func Generate(p Params) (*World, error) {
	if p.SeedEntities <= 0 {
		return nil, fmt.Errorf("synth: SeedEntities %d <= 0", p.SeedEntities)
	}
	if p.Span.Width() <= 0 {
		p.Span = action.Window{Start: 0, End: action.Year}
	}
	tax := p.Domain.Taxonomy()
	for i, sc := range p.Domain.Catalog {
		if err := sc.Validate(tax); err != nil {
			return nil, fmt.Errorf("synth: catalog[%d]: %w", i, err)
		}
	}
	reg := taxonomy.NewRegistry(tax)
	rng := NewRand(p.Seed)

	w := &World{
		Domain:   p.Domain,
		Reg:      reg,
		History:  dump.NewHistory(reg),
		NextYear: dump.NewHistory(reg),
		Span:     p.Span,
	}

	// Seed entities, with the configured subtype sprinkled in.
	for i := 0; i < p.SeedEntities; i++ {
		t := p.Domain.SeedType
		if p.Domain.SeedSubType != "" && p.Domain.SeedSubTypeEvery > 0 && i%p.Domain.SeedSubTypeEvery == p.Domain.SeedSubTypeEvery-1 {
			t = p.Domain.SeedSubType
		}
		id := reg.MustAdd(fmt.Sprintf("%s %04d", p.Domain.SeedType, i), t)
		w.Seeds = append(w.Seeds, id)
	}
	// Related pools.
	for _, pool := range p.Domain.Pools {
		n := pool.Size(p.SeedEntities)
		for i := 0; i < n; i++ {
			reg.MustAdd(fmt.Sprintf("%s %04d", pool.Prefix, i), pool.Type)
		}
	}

	// Scenario instances. Seeds are globally rationed across scenarios and
	// participate at most once per scenario, so supports are window
	// unions, not products.
	maxPer := p.MaxScenariosPerSeed
	if maxPer <= 0 {
		maxPer = 2
	}
	busy := make(map[taxonomy.EntityID]int, len(w.Seeds))
	for si, sc := range p.Domain.Catalog {
		if sc.Ghost {
			continue // catalog-only pattern; realized by another scenario
		}
		w.emitScenario(rng, p, si, sc, busy, maxPer)
	}
	// Noise.
	w.emitNoise(rng, p)
	// Unrelated-type activity.
	w.emitDistractors(rng, p)
	// Next-year corrections.
	w.emitCorrections(rng, p)
	return w, nil
}

// emitDistractors populates musician/album entities — types unreachable
// from the seed type — and records edits between them. Only the full-graph
// mining variants ever pay for these.
func (w *World) emitDistractors(rng *Rand, p Params) {
	if p.Distractors <= 0 || p.DistractorEdits <= 0 {
		return
	}
	tax := w.Reg.Taxonomy()
	tax.AddChain("Work", "MusicAlbum")
	tax.AddChain("Agent", "Person", "Artist", "MusicalArtist")
	tax.AddChain("Agent", "Organisation", "MusicBand")
	n := int(p.Distractors * float64(len(w.Seeds)))
	if n < 4 {
		n = 4
	}
	var pools [3][]taxonomy.EntityID
	for i := 0; i < n; i++ {
		pools[0] = append(pools[0], w.Reg.MustAdd(fmt.Sprintf("Musician %04d", i), "MusicalArtist"))
		pools[1] = append(pools[1], w.Reg.MustAdd(fmt.Sprintf("Album %04d", i), "MusicAlbum"))
		pools[2] = append(pools[2], w.Reg.MustAdd(fmt.Sprintf("Band %04d", i), "MusicBand"))
	}
	span := int(w.Span.Width())
	// A broad label vocabulary: each (label, type pair, op) shape becomes
	// an abstract-action template, so the materialized full graph carries
	// a large candidate surface the incremental construction never sees —
	// Wikipedia's edits graph is dominated by exactly this kind of
	// unrelated variety ("the dense connectivity of the Wikipedia graph",
	// §6.2).
	verbs := []string{"performed", "wrote", "produced", "recorded", "mixed", "covered", "toured", "sampled"}
	nouns := []string{"with", "for", "on", "alongside", "against", "before", "after", "during"}
	var labels []action.Label
	for _, v := range verbs {
		for _, n := range nouns {
			labels = append(labels, action.Label(v+"_"+n))
		}
	}
	edits := int(p.DistractorEdits * float64(3*n))
	for i := 0; i < edits; i++ {
		src := pools[rng.Intn(3)]
		dst := pools[rng.Intn(3)]
		a := action.Action{
			Op: action.Add,
			Edge: action.Edge{
				Src:   src[rng.Intn(len(src))],
				Label: labels[rng.Intn(len(labels))],
				Dst:   dst[rng.Intn(len(dst))],
			},
			T: w.Span.Start + action.Time(rng.Intn(span)),
		}
		if a.Edge.Src == a.Edge.Dst {
			continue
		}
		if rng.Bool(0.25) {
			a.Op = action.Remove
		}
		w.History.AddActions(a)
		w.Noise++
	}
}

// rolePool returns the candidate entities for a non-seed role of the given
// type. Seed entities are excluded when the type has its own pool — a
// predecessor or old-captain role filled by another *seed* would chain that
// seed's own scenario edits onto this instance's realization and fabricate
// multi-seed patterns real data does not show; dedicated pools (former
// senators, veteran players) play those roles instead.
func (w *World) rolePool(t taxonomy.Type) []taxonomy.EntityID {
	all := w.Reg.EntitiesOf(t)
	if w.seedSet == nil {
		w.seedSet = make(map[taxonomy.EntityID]bool, len(w.Seeds))
		for _, s := range w.Seeds {
			w.seedSet[s] = true
		}
	}
	nonSeed := make([]taxonomy.EntityID, 0, len(all))
	for _, id := range all {
		if !w.seedSet[id] {
			nonSeed = append(nonSeed, id)
		}
	}
	if len(nonSeed) > 0 {
		return nonSeed
	}
	return all
}

func (w *World) emitScenario(rng *Rand, p Params, si int, sc Scenario, busy map[taxonomy.EntityID]int, maxPer int) {
	usedHere := map[taxonomy.EntityID]bool{}
	for _, win := range sc.Windows(w.Span) {
		nPart := int(float64(len(w.Seeds))*sc.Participation + 0.5)
		if nPart < 1 {
			nPart = 1
		}
		// Eligible seeds: not already in this scenario, under the global
		// participation cap. Window-less scenarios spread their
		// participants over the whole span (their single pseudo-window) so
		// no real window ever holds enough support — that is what makes
		// them invisible to window-based mining.
		var eligible []taxonomy.EntityID
		for _, s := range w.Seeds {
			if !usedHere[s] && busy[s] < maxPer {
				eligible = append(eligible, s)
			}
		}
		if len(eligible) == 0 {
			continue
		}
		for _, pi := range rng.Sample(len(eligible), nPart) {
			seed := eligible[pi]
			usedHere[seed] = true
			busy[seed]++
			w.emitInstance(rng, p, si, sc, seed, win)
		}
	}
}

func (w *World) emitInstance(rng *Rand, p Params, si int, sc Scenario, seed taxonomy.EntityID, win action.Window) {
	// Assign roles: role 0 is the seed, others drawn distinct.
	entities := make([]taxonomy.EntityID, len(sc.Roles))
	entities[0] = seed
	used := map[taxonomy.EntityID]bool{seed: true}
	for r := 1; r < len(sc.Roles); r++ {
		pool := w.rolePool(sc.Roles[r])
		if len(pool) == 0 {
			return // misconfigured pool; validated scenarios should not hit this
		}
		var pick taxonomy.EntityID
		for tries := 0; tries < 32; tries++ {
			pick = pool[rng.Intn(len(pool))]
			if !used[pick] {
				break
			}
		}
		if used[pick] {
			return // pool too small to satisfy distinctness
		}
		used[pick] = true
		entities[r] = pick
	}

	// Legitimate all-or-nothing variation: skipped steps are neither
	// emitted nor errors (a same-league move performs no league edits).
	skipped := map[int]bool{}
	for _, g := range sc.SkipGroups {
		if rng.Bool(g.Prob) {
			for _, i := range g.Steps {
				skipped[i] = true
			}
		}
	}

	// Choose the omitted step for an erroneous instance, among the steps
	// actually planned for this instance.
	omit := -1
	if rng.Bool(sc.ErrorRate) {
		total := 0
		for i, st := range sc.Steps {
			if !skipped[i] {
				total += st.OmitWeight
			}
		}
		if total > 0 {
			pick := rng.Intn(total)
			for i, st := range sc.Steps {
				if skipped[i] {
					continue
				}
				pick -= st.OmitWeight
				if pick < 0 {
					omit = i
					break
				}
			}
		}
	}

	inst := InjectedInstance{Scenario: si, Window: win, Entities: entities}
	width := float64(win.Width())
	for i, st := range sc.Steps {
		if skipped[i] {
			inst.Skipped = append(inst.Skipped, action.Action{
				Op:   st.Op,
				Edge: action.Edge{Src: entities[st.Src], Label: st.Label, Dst: entities[st.Dst]},
				T:    win.Start,
			})
			continue
		}
		lo, hi := st.TimeLo, st.TimeHi
		if lo == 0 && hi == 0 {
			hi = 1
		}
		t := win.Start + action.Time((lo+rng.Float64()*(hi-lo))*width)
		if t >= win.End {
			t = win.End - 1
		}
		a := action.Action{
			Op: st.Op,
			Edge: action.Edge{
				Src:   entities[st.Src],
				Label: st.Label,
				Dst:   entities[st.Dst],
			},
			T: t,
		}
		if i == omit {
			inst.Omitted = append(inst.Omitted, a)
			continue
		}
		inst.Actions = append(inst.Actions, a)
	}
	if inst.IsError() {
		inst.RealError = !rng.Bool(p.BenignPartialRate)
	}
	w.History.AddActions(inst.Actions...)
	w.Truth = append(w.Truth, inst)
}

// emitNoise adds rumor/revert pairs and uncoordinated lone edits.
func (w *World) emitNoise(rng *Rand, p Params) {
	span := int(w.Span.Width())
	if span <= 1 {
		return
	}
	all := w.Reg.All()
	emitCount := func(rate float64) int {
		n := int(rate)
		if rng.Bool(rate - float64(n)) {
			n++
		}
		return n
	}
	for _, seed := range w.Seeds {
		// Rumors: an edit and its revert, hours apart — reduction noise.
		for i := 0; i < emitCount(p.NoiseRumors); i++ {
			label := w.Domain.NoiseLabels[rng.Intn(len(w.Domain.NoiseLabels))]
			tgt := all[rng.Intn(len(all))]
			if tgt == seed {
				continue
			}
			t := w.Span.Start + action.Time(rng.Intn(span-1))
			gap := action.Time(rng.Intn(int(2*action.Day))) + 1
			if t+gap >= w.Span.End {
				gap = w.Span.End - t - 1
			}
			w.History.AddActions(
				action.Action{Op: action.Add, Edge: action.Edge{Src: seed, Label: label, Dst: tgt}, T: t},
				action.Action{Op: action.Remove, Edge: action.Edge{Src: seed, Label: label, Dst: tgt}, T: t + gap},
			)
			w.Noise += 2
		}
		// Lone edits: half outgoing from the seed, half incoming from a
		// random entity — unmatched halves of plausible patterns.
		for i := 0; i < emitCount(p.NoiseLoneEdits); i++ {
			label := w.Domain.NoiseLabels[rng.Intn(len(w.Domain.NoiseLabels))]
			other := all[rng.Intn(len(all))]
			if other == seed {
				continue
			}
			t := w.Span.Start + action.Time(rng.Intn(span))
			a := action.Action{Op: action.Add, Edge: action.Edge{Src: seed, Label: label, Dst: other}, T: t}
			if rng.Bool(0.5) {
				a.Edge.Src, a.Edge.Dst = other, seed
			}
			w.History.AddActions(a)
			w.Noise++
		}
	}
}

// emitCorrections builds the next-year log: a CorrectionRate share of the
// real injected errors get their omitted edits applied in the following
// weeks. Benign partials stay untouched.
func (w *World) emitCorrections(rng *Rand, p Params) {
	for i := range w.Truth {
		inst := &w.Truth[i]
		if !inst.IsError() || !inst.RealError {
			continue
		}
		if !rng.Bool(p.CorrectionRate) {
			continue
		}
		inst.Corrected = true
		for _, a := range inst.Omitted {
			a.T = w.Span.End + action.Time(rng.Intn(int(8*action.Week)))
			w.NextYear.AddActions(a)
		}
	}
}

// CatalogPatterns returns the ground-truth patterns of the domain catalog,
// in catalog order — the expert list quality evaluation compares against.
func (w *World) CatalogPatterns() []InjectedPattern {
	out := make([]InjectedPattern, len(w.Domain.Catalog))
	for i, sc := range w.Domain.Catalog {
		out[i] = InjectedPattern{
			Name:       sc.Name,
			Pattern:    sc.Pattern(),
			WindowLess: sc.Period <= 0,
		}
	}
	return out
}

// InjectedPattern pairs a catalog scenario name with its ground-truth
// pattern.
type InjectedPattern struct {
	Name       string
	Pattern    pattern.Pattern
	WindowLess bool
}

// ErrorStats summarizes the injected ground truth.
type ErrorStats struct {
	Instances int
	Errors    int
	Real      int
	Benign    int
	Corrected int
}

// TruthStats computes the injected ground-truth tallies.
func (w *World) TruthStats() ErrorStats {
	var s ErrorStats
	s.Instances = len(w.Truth)
	for _, inst := range w.Truth {
		if !inst.IsError() {
			continue
		}
		s.Errors++
		if inst.RealError {
			s.Real++
		} else {
			s.Benign++
		}
		if inst.Corrected {
			s.Corrected++
		}
	}
	return s
}

// RevisionDump renders the full history as wikitext revisions: per entity,
// one revision per edit, each containing the complete infobox after the
// edit. Feeding this through dump.IngestRevisions reproduces the paper's
// crawl-parse-diff preprocessing path bit-for-bit (up to link ordering).
func (w *World) RevisionDump() []dump.Revision {
	type ev struct {
		a action.Action
	}
	byEntity := map[taxonomy.EntityID][]ev{}
	for _, id := range w.History.EntitiesWithActions() {
		for _, a := range w.History.ActionsOf([]taxonomy.EntityID{id}, w.Span) {
			byEntity[a.Edge.Src] = append(byEntity[a.Edge.Src], ev{a})
		}
	}
	ids := make([]taxonomy.EntityID, 0, len(byEntity))
	for id := range byEntity {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var revs []dump.Revision
	for _, id := range ids {
		evs := byEntity[id]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].a.T < evs[j].a.T })
		name := w.Reg.Name(id)
		boxType := string(w.Reg.TypeOf(id))

		// Links whose first touch is a Remove existed before the span
		// (e.g. the old club a transfer deletes). They form the article's
		// baseline revision, stamped just before the span so window
		// filters exclude it.
		links := map[wikitext.Link]bool{}
		firstTouched := map[wikitext.Link]bool{}
		for _, e := range evs {
			l := wikitext.Link{Relation: string(e.a.Edge.Label), Target: w.Reg.Name(e.a.Edge.Dst)}
			if !firstTouched[l] {
				firstTouched[l] = true
				if e.a.Op == action.Remove {
					links[l] = true
				}
			}
		}
		if len(links) > 0 {
			base := make([]wikitext.Link, 0, len(links))
			for k := range links {
				base = append(base, k)
			}
			revs = append(revs, dump.Revision{
				Entity: name,
				T:      w.Span.Start - 1,
				Text:   wikitext.RenderArticle(name, boxType, base),
			})
		}
		for _, e := range evs {
			l := wikitext.Link{Relation: string(e.a.Edge.Label), Target: w.Reg.Name(e.a.Edge.Dst)}
			if e.a.Op == action.Add {
				links[l] = true
			} else {
				delete(links, l)
			}
			cur := make([]wikitext.Link, 0, len(links))
			for k := range links {
				cur = append(cur, k)
			}
			revs = append(revs, dump.Revision{
				Entity: name,
				T:      e.a.T,
				Text:   wikitext.RenderArticle(name, boxType, cur),
			})
		}
	}
	return revs
}
