// Package synth generates synthetic Wikipedia-style revision histories that
// stand in for the crawled data of §6. A generated World contains a typed
// entity universe for one of the paper's three domains (soccer,
// cinematography, US politics), an event-driven revision log in which
// ground-truth update scenarios fire inside their natural time windows —
// with reverted rumors, vandalism, uncoordinated noise edits, and injected
// partial edits (the errors WiClean must find) — plus a simulated
// "next year" log in which a known share of the injected errors get
// corrected, reproducing the validation protocol of §6.3.
//
// The scenario catalog of each domain doubles as the paper's expert
// ground-truth list (11 soccer / 8 cinematography / 5 politics patterns);
// per domain a fixed number of catalog entries are made statistically
// invisible (spread uniformly with low per-window participation), modeling
// the patterns the experts listed but WiClean's window-based mining is
// expected to miss.
package synth

// Rand is a small deterministic PRNG (xorshift64*), so generated worlds are
// reproducible from a seed without importing math/rand — benchmark inputs
// must be bit-identical across runs.
type Rand struct {
	state uint64
}

// NewRand seeds a generator; a zero seed is remapped to a fixed constant.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n). It panics for n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("synth: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct values from [0, n) in random order; k > n
// returns all n.
func (r *Rand) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	return r.Perm(n)[:k]
}
