package assist

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wiclean/internal/action"
	"wiclean/internal/detect"
	"wiclean/internal/mining"
	"wiclean/internal/obs"
	"wiclean/internal/pattern"
	"wiclean/internal/taxonomy"
)

// KnownPattern is a mined pattern registered with the assistant, with the
// statistical metadata shown to editors.
type KnownPattern struct {
	Pattern   pattern.Pattern
	Frequency float64
	Width     action.Time // window width the pattern was mined at
}

// Advice is the assistant's response to a live edit: the pattern the edit
// appears to start, the companion edits already present in the current
// window, and the ones still missing (the on-line suggestions of §5).
type Advice struct {
	Pattern   pattern.Pattern
	Frequency float64
	Matched   int // index of the pattern action the edit realizes
	Done      []detect.Suggestion
	Missing   []detect.Suggestion
}

// Format renders the advice with entity names.
func (a Advice) Format(reg *taxonomy.Registry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern (freq %.2f): %s\n", a.Frequency, a.Pattern)
	for _, s := range a.Done {
		fmt.Fprintf(&b, "  done:    %s\n", s.Format(reg))
	}
	for _, s := range a.Missing {
		fmt.Fprintf(&b, "  suggest: %s\n", s.Format(reg))
	}
	return b.String()
}

// actionKey indexes abstract actions by the parts of a live edit that must
// match exactly: the operation, the relation label, and the source
// variable's declared type. A concrete edit realizes such an action iff
// the edit's source entity has the declared type (in the ≤ sense), so
// probing one key per ancestor of the editor's most specific type finds
// every candidate without scanning the pattern list.
type actionKey struct {
	op    action.Op
	label action.Label
	src   taxonomy.Type
}

// candidate references one abstract action of one known pattern.
type candidate struct {
	pat int // index into Assistant.patterns
	act int // index into the pattern's Actions
}

// Assistant matches live edits against known patterns and suggests
// completions.
type Assistant struct {
	store    mining.Store
	patterns []KnownPattern
	index    map[actionKey][]candidate // (op, label, src type) → actions
	obs      *obs.Registry             // nil-safe metrics sink
}

// NewAssistant returns an assistant over the store with the given mined
// patterns. Construction builds the inverted action index Suggest probes,
// so per-edit lookup cost scales with the editor's type depth and the
// matching candidates, not with the size of the whole pattern model.
func NewAssistant(store mining.Store, patterns []KnownPattern) *Assistant {
	ps := append([]KnownPattern(nil), patterns...)
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Frequency > ps[j].Frequency })
	index := make(map[actionKey][]candidate)
	for pi, kp := range ps {
		for ai, abs := range kp.Pattern.Actions {
			key := actionKey{op: abs.Op, label: abs.Label, src: kp.Pattern.Vars[abs.Src]}
			index[key] = append(index[key], candidate{pat: pi, act: ai})
		}
	}
	return &Assistant{store: store, patterns: ps, index: index}
}

// IndexSize reports the inverted index's dimensions: distinct (op, label,
// source-type) keys and total (pattern, action) entries.
func (a *Assistant) IndexSize() (keys, entries int) {
	for _, cs := range a.index {
		entries += len(cs)
	}
	return len(a.index), entries
}

// WithObs attaches a metrics registry (requests, advices produced,
// suggestion latency, index probes and sizes) and returns the assistant.
// Nil is a safe no-op sink.
func (a *Assistant) WithObs(r *obs.Registry) *Assistant {
	a.obs = r
	keys, entries := a.IndexSize()
	r.Gauge(obs.AssistIndexKeys).Set(float64(keys))
	r.Gauge(obs.AssistIndexEntries).Set(float64(entries))
	return a
}

// Suggest reacts to a live edit at time now: every known pattern containing
// an abstract action the edit realizes yields one Advice, with companion
// edits split into already-done (recorded in the pattern's current window)
// and still-missing. Advices are ordered by pattern frequency.
func (a *Assistant) Suggest(edit action.Action, now action.Time) []Advice {
	start := time.Now()
	a.obs.Counter(obs.AssistRequests).Inc()
	defer func() {
		a.obs.Histogram(obs.AssistSuggestSeconds, obs.DurationBuckets).
			ObserveDuration(time.Since(start))
	}()
	reg := a.store.Registry()
	tax := reg.Taxonomy()

	// Probe the inverted index once per ancestor of the editing entity's
	// most specific type. Together the probes enumerate exactly the
	// abstract actions whose source variable the edit can bind, without
	// scanning the full pattern list.
	var cands []candidate
	for _, t := range tax.Ancestors(reg.TypeOf(edit.Edge.Src)) {
		a.obs.Counter(obs.AssistIndexProbes).Inc()
		cands = append(cands, a.index[actionKey{op: edit.Op, label: edit.Edge.Label, src: t}]...)
	}
	a.obs.Counter(obs.AssistIndexCandidates).Add(int64(len(cands)))

	// One advice per pattern, on its lowest-index action the edit fully
	// realizes — the same selection the former linear scan made.
	matched := map[int]int{} // pattern index → matched action index
	for _, c := range cands {
		p := a.patterns[c.pat].Pattern
		if !reg.HasType(edit.Edge.Dst, p.Vars[p.Actions[c.act].Dst]) {
			continue
		}
		if cur, ok := matched[c.pat]; !ok || c.act < cur {
			matched[c.pat] = c.act
		}
	}
	order := make([]int, 0, len(matched))
	for pi := range matched {
		order = append(order, pi)
	}
	sort.Ints(order) // patterns are pre-sorted by descending frequency

	var out []Advice
	for _, pi := range order {
		kp := a.patterns[pi]
		p := kp.Pattern
		ai := matched[pi]
		abs := p.Actions[ai]

		// Bind the matched action's variables to the edit's entities.
		binding := make([]taxonomy.EntityID, len(p.Vars))
		for i := range binding {
			binding[i] = taxonomy.NoEntity
		}
		binding[abs.Src] = edit.Edge.Src
		binding[abs.Dst] = edit.Edge.Dst

		// The pattern's current window: the width-aligned window
		// containing now.
		width := kp.Width
		if width <= 0 {
			width = 2 * action.Week
		}
		start := now - now%width
		win := action.Window{Start: start, End: start + width}

		done, missing := a.companions(p, ai, binding, win)
		out = append(out, Advice{
			Pattern:   p,
			Frequency: kp.Frequency,
			Matched:   ai,
			Done:      done,
			Missing:   missing,
		})
	}
	a.obs.Counter(obs.AssistAdvices).Add(int64(len(out)))
	return out
}

// realizes reports whether the concrete edit realizes the abstract action.
func (a *Assistant) realizes(edit action.Action, p pattern.Pattern, abs pattern.AbstractAction) bool {
	if edit.Op != abs.Op || edit.Edge.Label != abs.Label {
		return false
	}
	reg := a.store.Registry()
	return reg.HasType(edit.Edge.Src, p.Vars[abs.Src]) && reg.HasType(edit.Edge.Dst, p.Vars[abs.Dst])
}

// companions splits the pattern's other actions into already-recorded and
// missing, instantiated under the binding. Companion actions touching
// unbound variables are extended with bindings discovered along the way
// (an already-done companion can bind more variables for later ones).
func (a *Assistant) companions(p pattern.Pattern, matched int, binding []taxonomy.EntityID, win action.Window) (done, missing []detect.Suggestion) {
	reg := a.store.Registry()
	// Collect the window's reduced actions for the types in the pattern.
	var ids []taxonomy.EntityID
	seen := map[taxonomy.EntityID]bool{}
	for _, t := range p.TypeSet() {
		for _, id := range reg.EntitiesOf(t) {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	reduced := action.Reduce(a.store.ActionsOf(ids, win))

	// Sweep repeatedly so bindings discovered from already-done companions
	// propagate to actions that were not instantiable yet. Each sweep
	// handles the actions with at least one bound endpoint; a final pass
	// reports still-uninstantiable actions as missing with both sides open.
	handled := make([]bool, len(p.Actions))
	handled[matched] = true
	for round := 0; round < len(p.Actions); round++ {
		progressed := false
		for ai, abs := range p.Actions {
			if handled[ai] {
				continue
			}
			src, dst := binding[abs.Src], binding[abs.Dst]
			if src == taxonomy.NoEntity && dst == taxonomy.NoEntity {
				continue // not yet instantiable; wait for more bindings
			}
			handled[ai] = true
			progressed = true
			found, other := a.lookup(reduced, abs, p, src, dst)
			sug := detect.Suggestion{
				Op:      abs.Op,
				Src:     src,
				SrcType: p.Vars[abs.Src],
				Label:   abs.Label,
				Dst:     dst,
				DstType: p.Vars[abs.Dst],
			}
			if found {
				// Propagate any variable the recorded edit binds.
				if src == taxonomy.NoEntity {
					binding[abs.Src] = other
					sug.Src = other
				}
				if dst == taxonomy.NoEntity {
					binding[abs.Dst] = other
					sug.Dst = other
				}
				done = append(done, sug)
			} else {
				missing = append(missing, sug)
			}
		}
		if !progressed {
			break
		}
	}
	for ai, abs := range p.Actions {
		if handled[ai] {
			continue
		}
		missing = append(missing, detect.Suggestion{
			Op:      abs.Op,
			Src:     binding[abs.Src],
			SrcType: p.Vars[abs.Src],
			Label:   abs.Label,
			Dst:     binding[abs.Dst],
			DstType: p.Vars[abs.Dst],
		})
	}
	return done, missing
}

// lookup searches the reduced window actions for a concrete realization of
// abs with the given (possibly partial) binding. It returns whether one was
// found and the entity bound to the previously unbound side (if any).
func (a *Assistant) lookup(reduced []action.Action, abs pattern.AbstractAction, p pattern.Pattern, src, dst taxonomy.EntityID) (bool, taxonomy.EntityID) {
	reg := a.store.Registry()
	for _, c := range reduced {
		if c.Op != abs.Op || c.Edge.Label != abs.Label {
			continue
		}
		if src != taxonomy.NoEntity && c.Edge.Src != src {
			continue
		}
		if dst != taxonomy.NoEntity && c.Edge.Dst != dst {
			continue
		}
		if !reg.HasType(c.Edge.Src, p.Vars[abs.Src]) || !reg.HasType(c.Edge.Dst, p.Vars[abs.Dst]) {
			continue
		}
		other := taxonomy.NoEntity
		if src == taxonomy.NoEntity {
			other = c.Edge.Src
		} else if dst == taxonomy.NoEntity {
			other = c.Edge.Dst
		}
		return true, other
	}
	return false, taxonomy.NoEntity
}
