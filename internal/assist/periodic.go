// Package assist implements the edit-assistance layer of §5: detecting
// patterns that recur periodically across windows (transfer windows every
// summer, award seasons every spring) and providing online suggestions to
// editors as they update entities inside such a window — the backend of the
// WiClean browser plug-in.
package assist

import (
	"fmt"
	"sort"

	"wiclean/internal/action"
	"wiclean/internal/pattern"
)

// Occurrence is one window in which a pattern was frequent.
type Occurrence struct {
	Window    action.Window
	Frequency float64
}

// PeriodicPattern is a pattern whose frequent windows recur with a roughly
// constant period ("transfer windows occur each summer with a similar edit
// pattern", §5).
type PeriodicPattern struct {
	Pattern     pattern.Pattern
	Occurrences []Occurrence
	Period      action.Time // mean gap between occurrence starts
	Next        action.Window
}

// String renders the periodic pattern.
func (p PeriodicPattern) String() string {
	return fmt.Sprintf("every ~%dd (%d occurrences, next %v): %s",
		p.Period/action.Day, len(p.Occurrences), p.Next, p.Pattern)
}

// FindPeriodic groups occurrences by pattern (canonical form) and returns
// the patterns whose consecutive gaps deviate from their mean by at most
// tolerance (a fraction, e.g. 0.25). At least two occurrences — hence one
// gap — are required. The predicted next window starts one period after
// the last occurrence and inherits its width.
func FindPeriodic(byPattern map[string][]Occurrence, patterns map[string]pattern.Pattern, tolerance float64) []PeriodicPattern {
	keys := make([]string, 0, len(byPattern))
	for k := range byPattern {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []PeriodicPattern
	for _, k := range keys {
		occ := append([]Occurrence(nil), byPattern[k]...)
		if len(occ) < 2 {
			continue
		}
		sort.Slice(occ, func(i, j int) bool { return occ[i].Window.Start < occ[j].Window.Start })
		gaps := make([]action.Time, 0, len(occ)-1)
		for i := 1; i < len(occ); i++ {
			gaps = append(gaps, occ[i].Window.Start-occ[i-1].Window.Start)
		}
		var sum action.Time
		for _, g := range gaps {
			sum += g
		}
		mean := sum / action.Time(len(gaps))
		if mean <= 0 {
			continue
		}
		regular := true
		for _, g := range gaps {
			dev := float64(g-mean) / float64(mean)
			if dev < 0 {
				dev = -dev
			}
			if dev > tolerance {
				regular = false
				break
			}
		}
		if !regular {
			continue
		}
		last := occ[len(occ)-1].Window
		out = append(out, PeriodicPattern{
			Pattern:     patterns[k],
			Occurrences: occ,
			Period:      mean,
			Next:        action.Window{Start: last.Start + mean, End: last.Start + mean + last.Width()},
		})
	}
	return out
}
