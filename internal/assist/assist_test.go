package assist

import (
	"reflect"
	"strings"
	"testing"

	"wiclean/internal/action"
	"wiclean/internal/dump"
	"wiclean/internal/pattern"
	"wiclean/internal/taxonomy"
)

func setup(t *testing.T) (*taxonomy.Registry, *dump.History, []taxonomy.EntityID, []taxonomy.EntityID) {
	t.Helper()
	x := taxonomy.New()
	x.AddChain("Person", "Athlete", "FootballPlayer")
	x.AddChain("Organisation", "FootballClub")
	reg := taxonomy.NewRegistry(x)
	var players, clubs []taxonomy.EntityID
	for _, n := range []string{"P1", "P2"} {
		players = append(players, reg.MustAdd(n, "FootballPlayer"))
	}
	for _, n := range []string{"C1", "C2"} {
		clubs = append(clubs, reg.MustAdd(n, "FootballClub"))
	}
	return reg, dump.NewHistory(reg), players, clubs
}

func reciprocal() pattern.Pattern {
	return pattern.Pattern{
		Vars: []taxonomy.Type{"FootballPlayer", "FootballClub"},
		Actions: []pattern.AbstractAction{
			{Op: action.Add, Src: 0, Label: "current_club", Dst: 1},
			{Op: action.Add, Src: 1, Label: "squad", Dst: 0},
		},
	}
}

func transfer3() pattern.Pattern {
	return pattern.Pattern{
		Vars: []taxonomy.Type{"FootballPlayer", "FootballClub", "FootballClub"},
		Actions: []pattern.AbstractAction{
			{Op: action.Add, Src: 0, Label: "current_club", Dst: 1},
			{Op: action.Remove, Src: 0, Label: "current_club", Dst: 2},
			{Op: action.Add, Src: 1, Label: "squad", Dst: 0},
		},
	}
}

func TestSuggestProposesMissingCompanion(t *testing.T) {
	reg, store, players, clubs := setup(t)
	as := NewAssistant(store, []KnownPattern{{Pattern: reciprocal(), Frequency: 0.8, Width: 100}})

	edit := action.Action{Op: action.Add, Edge: action.Edge{Src: players[0], Label: "current_club", Dst: clubs[0]}, T: 50}
	advices := as.Suggest(edit, 50)
	if len(advices) != 1 {
		t.Fatalf("advices = %d", len(advices))
	}
	adv := advices[0]
	if adv.Matched != 0 || len(adv.Missing) != 1 || len(adv.Done) != 0 {
		t.Fatalf("advice = %+v", adv)
	}
	s := adv.Missing[0]
	if s.Src != clubs[0] || s.Dst != players[0] || s.Label != "squad" {
		t.Fatalf("suggestion = %+v", s)
	}
	if !strings.Contains(adv.Format(reg), "suggest") {
		t.Error("Format should render suggestions")
	}
}

func TestSuggestRecognizesDoneCompanion(t *testing.T) {
	_, store, players, clubs := setup(t)
	// The club already reciprocated earlier in the window.
	store.AddActions(action.Action{
		Op: action.Add, Edge: action.Edge{Src: clubs[0], Label: "squad", Dst: players[0]}, T: 10,
	})
	as := NewAssistant(store, []KnownPattern{{Pattern: reciprocal(), Frequency: 0.8, Width: 100}})
	edit := action.Action{Op: action.Add, Edge: action.Edge{Src: players[0], Label: "current_club", Dst: clubs[0]}, T: 50}
	advices := as.Suggest(edit, 50)
	if len(advices) != 1 {
		t.Fatalf("advices = %d", len(advices))
	}
	adv := advices[0]
	if len(adv.Done) != 1 || len(adv.Missing) != 0 {
		t.Fatalf("advice = %+v", adv)
	}
}

func TestSuggestBindsVariablesTransitively(t *testing.T) {
	_, store, players, clubs := setup(t)
	// The old-club removal is recorded; its club entity must propagate
	// into the binding so nothing is double-suggested.
	store.AddActions(action.Action{
		Op: action.Remove, Edge: action.Edge{Src: players[0], Label: "current_club", Dst: clubs[1]}, T: 20,
	})
	as := NewAssistant(store, []KnownPattern{{Pattern: transfer3(), Frequency: 0.6, Width: 100}})
	edit := action.Action{Op: action.Add, Edge: action.Edge{Src: players[0], Label: "current_club", Dst: clubs[0]}, T: 50}
	advices := as.Suggest(edit, 50)
	if len(advices) != 1 {
		t.Fatalf("advices = %d", len(advices))
	}
	adv := advices[0]
	if len(adv.Done) != 1 {
		t.Fatalf("done = %+v", adv.Done)
	}
	if adv.Done[0].Dst != clubs[1] {
		t.Fatalf("old club should be bound from the recorded removal: %+v", adv.Done[0])
	}
	if len(adv.Missing) != 1 || adv.Missing[0].Label != "squad" {
		t.Fatalf("missing = %+v", adv.Missing)
	}
}

func TestSuggestIgnoresUnrelatedEdits(t *testing.T) {
	_, store, players, clubs := setup(t)
	as := NewAssistant(store, []KnownPattern{{Pattern: reciprocal(), Frequency: 0.8, Width: 100}})
	// Wrong label.
	edit := action.Action{Op: action.Add, Edge: action.Edge{Src: players[0], Label: "sponsor", Dst: clubs[0]}, T: 50}
	if got := as.Suggest(edit, 50); len(got) != 0 {
		t.Fatalf("unrelated edit advised: %v", got)
	}
	// Wrong op.
	edit = action.Action{Op: action.Remove, Edge: action.Edge{Src: players[0], Label: "current_club", Dst: clubs[0]}, T: 50}
	if got := as.Suggest(edit, 50); len(got) != 0 {
		t.Fatalf("wrong-op edit advised: %v", got)
	}
}

func TestSuggestOrdersByFrequency(t *testing.T) {
	_, store, players, clubs := setup(t)
	as := NewAssistant(store, []KnownPattern{
		{Pattern: transfer3(), Frequency: 0.4, Width: 100},
		{Pattern: reciprocal(), Frequency: 0.9, Width: 100},
	})
	edit := action.Action{Op: action.Add, Edge: action.Edge{Src: players[0], Label: "current_club", Dst: clubs[0]}, T: 50}
	advices := as.Suggest(edit, 50)
	if len(advices) != 2 {
		t.Fatalf("advices = %d", len(advices))
	}
	if advices[0].Frequency < advices[1].Frequency {
		t.Fatal("advices must be ordered by frequency")
	}
}

func TestSuggestWindowAlignment(t *testing.T) {
	_, store, players, clubs := setup(t)
	// A companion edit in a previous window must not count as done.
	store.AddActions(action.Action{
		Op: action.Add, Edge: action.Edge{Src: clubs[0], Label: "squad", Dst: players[0]}, T: 40,
	})
	as := NewAssistant(store, []KnownPattern{{Pattern: reciprocal(), Frequency: 0.8, Width: 100}})
	edit := action.Action{Op: action.Add, Edge: action.Edge{Src: players[0], Label: "current_club", Dst: clubs[0]}, T: 150}
	advices := as.Suggest(edit, 150) // window [100, 200)
	if len(advices) != 1 || len(advices[0].Missing) != 1 {
		t.Fatalf("stale companion treated as done: %+v", advices)
	}
}

func TestFindPeriodicDetectsYearlyPattern(t *testing.T) {
	p := reciprocal()
	key := p.Canonical()
	occ := map[string][]Occurrence{
		key: {
			{Window: action.Window{Start: 0, End: 2 * action.Week}, Frequency: 0.8},
			{Window: action.Window{Start: action.Year, End: action.Year + 2*action.Week}, Frequency: 0.7},
			{Window: action.Window{Start: 2 * action.Year, End: 2*action.Year + 2*action.Week}, Frequency: 0.9},
		},
	}
	pats := map[string]pattern.Pattern{key: p}
	got := FindPeriodic(occ, pats, 0.25)
	if len(got) != 1 {
		t.Fatalf("periodic = %v", got)
	}
	pp := got[0]
	if pp.Period != action.Year {
		t.Errorf("period = %d", pp.Period)
	}
	if pp.Next.Start != 3*action.Year {
		t.Errorf("next = %v", pp.Next)
	}
	if pp.String() == "" {
		t.Error("String should render")
	}
}

func TestFindPeriodicRejectsIrregular(t *testing.T) {
	p := reciprocal()
	key := p.Canonical()
	occ := map[string][]Occurrence{
		key: {
			{Window: action.Window{Start: 0, End: action.Week}},
			{Window: action.Window{Start: 10 * action.Week, End: 11 * action.Week}},
			{Window: action.Window{Start: 12 * action.Week, End: 13 * action.Week}},
		},
	}
	if got := FindPeriodic(occ, map[string]pattern.Pattern{key: p}, 0.25); len(got) != 0 {
		t.Fatalf("irregular occurrences accepted: %v", got)
	}
}

func TestFindPeriodicNeedsTwoOccurrences(t *testing.T) {
	p := reciprocal()
	key := p.Canonical()
	occ := map[string][]Occurrence{
		key: {{Window: action.Window{Start: 0, End: action.Week}}},
	}
	if got := FindPeriodic(occ, map[string]pattern.Pattern{key: p}, 0.25); len(got) != 0 {
		t.Fatalf("single occurrence accepted: %v", got)
	}
}

func TestFindPeriodicToleranceBoundary(t *testing.T) {
	p := reciprocal()
	key := p.Canonical()
	// Gaps 10w and 12w: mean 11w, deviations ~9.1% — inside 0.1? 1w/11w
	// ≈ 0.0909 <= 0.1, accepted; at tolerance 0.05 rejected.
	occ := map[string][]Occurrence{
		key: {
			{Window: action.Window{Start: 0, End: action.Week}},
			{Window: action.Window{Start: 10 * action.Week, End: 11 * action.Week}},
			{Window: action.Window{Start: 22 * action.Week, End: 23 * action.Week}},
		},
	}
	pats := map[string]pattern.Pattern{key: p}
	if got := FindPeriodic(occ, pats, 0.10); len(got) != 1 {
		t.Fatalf("within tolerance rejected: %v", got)
	}
	if got := FindPeriodic(occ, pats, 0.05); len(got) != 0 {
		t.Fatalf("outside tolerance accepted: %v", got)
	}
}

// TestIndexSize checks the inverted index's reported dimensions.
func TestIndexSize(t *testing.T) {
	_, store, _, _ := setup(t)
	as := NewAssistant(store, []KnownPattern{
		{Pattern: reciprocal(), Frequency: 0.8, Width: 100},
		{Pattern: transfer3(), Frequency: 0.6, Width: 100},
	})
	keys, entries := as.IndexSize()
	if entries != 5 { // 2 + 3 abstract actions
		t.Errorf("entries = %d, want 5", entries)
	}
	if keys == 0 || keys > entries {
		t.Errorf("keys = %d out of (0, %d]", keys, entries)
	}
}

// suggestBruteForce is the pre-index reference implementation: scan every
// pattern, match its first realized action.
func suggestBruteForce(a *Assistant, edit action.Action, now action.Time) []Advice {
	var out []Advice
	for _, kp := range a.patterns {
		p := kp.Pattern
		for ai, abs := range p.Actions {
			if !a.realizes(edit, p, abs) {
				continue
			}
			binding := make([]taxonomy.EntityID, len(p.Vars))
			for i := range binding {
				binding[i] = taxonomy.NoEntity
			}
			binding[abs.Src] = edit.Edge.Src
			binding[abs.Dst] = edit.Edge.Dst
			width := kp.Width
			if width <= 0 {
				width = 2 * action.Week
			}
			start := now - now%width
			win := action.Window{Start: start, End: start + width}
			done, missing := a.companions(p, ai, binding, win)
			out = append(out, Advice{Pattern: p, Frequency: kp.Frequency, Matched: ai, Done: done, Missing: missing})
			break
		}
	}
	return out
}

// TestSuggestIndexMatchesBruteForce drives the indexed Suggest and the
// reference full scan over every (entity, op, label) combination of a
// multi-pattern world and asserts identical advice, including the
// supertype-matching path (patterns over Athlete must fire for
// FootballPlayer edits).
func TestSuggestIndexMatchesBruteForce(t *testing.T) {
	reg, store, players, clubs := setup(t)
	athleteReciprocal := pattern.Pattern{
		Vars: []taxonomy.Type{"Athlete", "Organisation"},
		Actions: []pattern.AbstractAction{
			{Op: action.Add, Src: 0, Label: "member_of", Dst: 1},
			{Op: action.Add, Src: 1, Label: "roster", Dst: 0},
		},
	}
	as := NewAssistant(store, []KnownPattern{
		{Pattern: reciprocal(), Frequency: 0.8, Width: 100},
		{Pattern: transfer3(), Frequency: 0.6, Width: 100},
		{Pattern: athleteReciprocal, Frequency: 0.7, Width: 200},
	})
	// Seed some window history so done/missing splits are non-trivial.
	store.AddActions(
		action.Action{Op: action.Add, Edge: action.Edge{Src: clubs[0], Label: "squad", Dst: players[0]}, T: 10},
		action.Action{Op: action.Remove, Edge: action.Edge{Src: players[1], Label: "current_club", Dst: clubs[1]}, T: 20},
	)
	subjects := append(append([]taxonomy.EntityID{}, players...), clubs...)
	for _, src := range subjects {
		for _, dst := range subjects {
			for _, op := range []action.Op{action.Add, action.Remove} {
				for _, label := range []action.Label{"current_club", "squad", "member_of", "roster", "unrelated"} {
					edit := action.Action{Op: op, Edge: action.Edge{Src: src, Label: label, Dst: dst}, T: 50}
					got := as.Suggest(edit, 50)
					want := suggestBruteForce(as, edit, 50)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("divergence for op=%d label=%s src=%s dst=%s:\n got %+v\nwant %+v",
							op, label, reg.Name(src), reg.Name(dst), got, want)
					}
				}
			}
		}
	}
}
