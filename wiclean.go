// Package wiclean is a from-scratch Go implementation of WiClean, the
// system of "Fixing Wikipedia Interlinks Using Revision History Patterns"
// (Milo, Novgorodov, Razmadze — EDBT 2021).
//
// Given revision histories of typed entities, WiClean mines connected edit
// patterns — combinations of link additions/removals that editors tend to
// perform together — along with the time windows in which partial edits
// are tolerable. It then flags past edits that never completed a known
// pattern inside its window, suggests concrete completions with
// statistical evidence, and assists live editing sessions.
//
// The minimal flow:
//
//	world, _ := wiclean.GenerateWorld(wiclean.Soccer(), 500, 1)
//	sys := wiclean.NewSystem(world.History, wiclean.DefaultConfig())
//	outcome, _ := sys.MineType("FootballPlayer", world.Span)
//	reports, _ := sys.DetectErrors(0)
//
// Everything the library needs is implemented in this repository on the Go
// standard library alone: the type taxonomy, the revision/dump store with
// a wikitext infobox parser, an in-memory relational engine with hash and
// outer joins (the paper's "SQL engine"), the pattern model with its
// specificity order, the grow-and-store miner with its two optimizations
// and their ablation variants, the window refinement driver, the
// outer-join error detector, the edit assistant, a synthetic Wikipedia
// generator standing in for the paper's crawled data, and the experiment
// harness reproducing every table and figure of the paper's evaluation.
package wiclean

import (
	"wiclean/internal/action"
	"wiclean/internal/assist"
	"wiclean/internal/core"
	"wiclean/internal/detect"
	"wiclean/internal/dump"
	"wiclean/internal/mining"
	"wiclean/internal/model"
	"wiclean/internal/obs"
	"wiclean/internal/pattern"
	"wiclean/internal/sql"
	"wiclean/internal/synth"
	"wiclean/internal/taxonomy"
	"wiclean/internal/windows"
)

// Data model.
type (
	// Type is a taxonomy type name (e.g. "FootballPlayer").
	Type = taxonomy.Type
	// Taxonomy is the rooted type hierarchy with the t' ≤ t order.
	Taxonomy = taxonomy.Taxonomy
	// Registry maps entity names to IDs and most specific types.
	Registry = taxonomy.Registry
	// EntityID is a dense entity handle.
	EntityID = taxonomy.EntityID

	// Op is an edit operation (Add or Remove).
	Op = action.Op
	// Label names a link relation.
	Label = action.Label
	// Time is a revision timestamp (seconds).
	Time = action.Time
	// Edge is a directed labeled link.
	Edge = action.Edge
	// Action is one revision edit: op, edge, timestamp.
	Action = action.Action
	// Window is a half-open time frame.
	Window = action.Window

	// Pattern is a set of abstract actions over typed variables.
	Pattern = pattern.Pattern
	// AbstractAction is one edit over pattern variables.
	AbstractAction = pattern.AbstractAction

	// History stores per-entity revision actions (implements the miner's
	// Store interface).
	History = dump.History
	// Revision is one raw wikitext revision of an article.
	Revision = dump.Revision

	// MiningConfig configures Algorithm 1 (thresholds, join strategy,
	// incremental construction).
	MiningConfig = mining.Config
	// MiningResult is one window's mining outcome.
	MiningResult = mining.Result
	// ScoredPattern is a mined pattern with support evidence.
	ScoredPattern = mining.ScoredPattern
	// RelativePattern is a most specific relative frequent pattern.
	RelativePattern = mining.RelativePattern
	// ConstantPattern is a value-specific pattern instantiation (a pattern
	// specific to one entity, the paper's §7 extension).
	ConstantPattern = mining.ConstantPattern

	// Config configures Algorithm 2 (window split, refinement policy).
	Config = windows.Config
	// Outcome is a full Algorithm 2 run's result.
	Outcome = windows.Outcome
	// DiscoveredPattern couples a pattern with its window and setting.
	DiscoveredPattern = windows.DiscoveredPattern

	// Report is Algorithm 3's output for one (pattern, window).
	Report = detect.Report
	// PartialEdit is one signaled potential error.
	PartialEdit = detect.PartialEdit
	// Suggestion is one concrete completion for a partial edit.
	Suggestion = detect.Suggestion

	// Advice is the assistant's response to a live edit.
	Advice = assist.Advice
	// Assistant matches live edits against known patterns.
	Assistant = assist.Assistant
	// PeriodicPattern is a pattern recurring with a regular period.
	PeriodicPattern = assist.PeriodicPattern

	// Domain describes a synthetic evaluation domain.
	Domain = synth.Domain
	// World is a generated synthetic Wikipedia universe.
	World = synth.World

	// System is the end-to-end WiClean pipeline over one store.
	System = core.System

	// Model is the serializable product of a mining run (legacy format;
	// prefer ModelFile).
	Model = windows.Model

	// ModelFile is the versioned, provenance-guarded on-disk model — the
	// persistent pattern store the serving path warm-starts from.
	ModelFile = model.File
	// ModelProvenance fingerprints the inputs a model was mined from.
	ModelProvenance = model.Provenance

	// Database is a SQL-queryable view of a revision log (tables: actions,
	// reduced).
	Database = sql.Database

	// Metrics is the pipeline's observability registry: atomic counters,
	// gauges, histograms and span timers with JSON / Prometheus snapshots.
	// Attach one with System.WithObs; a nil registry is a no-op throughout.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a Metrics registry.
	MetricsSnapshot = obs.Snapshot
)

// Edit operations.
const (
	Add    = action.Add
	Remove = action.Remove
)

// Common durations in Time units.
const (
	Hour = action.Hour
	Day  = action.Day
	Week = action.Week
	Year = action.Year
)

// NewTaxonomy returns a taxonomy containing only the root type.
func NewTaxonomy() *Taxonomy { return taxonomy.New() }

// NewRegistry returns an empty entity registry over the taxonomy.
func NewRegistry(tax *Taxonomy) *Registry { return taxonomy.NewRegistry(tax) }

// NewHistory returns an empty revision history over the registry.
func NewHistory(reg *Registry) *History { return dump.NewHistory(reg) }

// NewSystem wires a WiClean instance over a revision store.
func NewSystem(store mining.Store, config Config) *System { return core.New(store, config) }

// NewMetrics returns an empty observability registry; attach it with
// System.WithObs to collect per-stage counters, latency histograms and
// span timings, then read them via Snapshot or serve them with the plugin
// server's /metrics endpoint.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// DefaultConfig returns the paper's default Algorithm 2 configuration:
// two-week minimal windows, one-year maximum, threshold 0.7 refined down
// to 0.2 by alternating window doubling with 20% threshold cuts.
func DefaultConfig() Config {
	c := windows.Defaults()
	c.Mining = mining.PM(c.InitialTau)
	c.Mining.MaxAbstraction = 1
	return c
}

// PM returns Algorithm 1's full configuration at a threshold; see also
// mining.PMNoJoin / PMNoInc / PMNoIncNoJoin for the ablation variants via
// the Variant helper.
func PM(tau float64) MiningConfig { return mining.PM(tau) }

// Mine runs Algorithm 1 directly for one window.
func Mine(store mining.Store, seeds []EntityID, seedType Type, w Window, cfg MiningConfig) (*MiningResult, error) {
	return mining.Mine(store, seeds, seedType, w, cfg)
}

// SpecializeConstants derives value-specific pattern instantiations from a
// mining result: variables dominated by a single entity (at least share of
// realizations) are pinned to it — "a pattern specific to PSG, but not to
// football clubs in general" (§7).
func SpecializeConstants(res *MiningResult, reg *Registry, share float64) []ConstantPattern {
	return mining.SpecializeConstants(res, reg, share)
}

// NewDetector returns an Algorithm 3 detector over the store.
func NewDetector(store mining.Store) *detect.Detector { return detect.New(store) }

// NewDatabase builds the SQL-queryable relations (actions, reduced) over a
// history within a window — the relational face of the paper's Figure 1.
func NewDatabase(h *History, w Window) *Database { return sql.NewDatabase(h, w) }

// WriteModel / ReadModel persist mined models so detection and assistance
// can restart without re-mining (see System.UseModel).
var (
	WriteModel = windows.WriteModel
	ReadModel  = windows.ReadModel
)

// Persistent model store (internal/model): versioned files with a
// provenance fingerprint, checked at load so a stale model is rejected
// rather than silently served. Typical flow:
//
//	prov, _ := wiclean.Fingerprint(reg, span, cfg)
//	_ = wiclean.SaveModel("model.json", wiclean.SnapshotModel(outcome, reg, prov), nil)
//	f, _ := wiclean.LoadModel("model.json", nil)
//	if err := f.Verify(prov); err == nil { sys.UseOutcome(f.Outcome()) }
var (
	// SaveModel atomically writes a model file (metrics registry optional).
	SaveModel = model.Save
	// LoadModel reads and validates a model file.
	LoadModel = model.Load
	// Fingerprint computes the provenance of mining a registry over a span
	// with a configuration.
	Fingerprint = model.Fingerprint
	// SnapshotModel extracts the serializable part of an outcome.
	SnapshotModel = model.Snapshot
	// NewCheckpointer returns a file-backed refinement checkpointer; wire
	// it with System.WithCheckpoint to make Algorithm 2 runs resumable.
	NewCheckpointer = model.NewCheckpointer
)

// Synthetic evaluation domains (the paper's three).
func Soccer() Domain         { return synth.Soccer() }
func Cinematography() Domain { return synth.Cinematography() }
func USPoliticians() Domain  { return synth.USPoliticians() }

// DomainByName resolves "soccer", "cinematography" or "us-politicians".
func DomainByName(name string) (Domain, error) { return synth.DomainByName(name) }

// GenerateWorld builds a synthetic world of the domain with the given seed
// entity count, reproducible from seed. The simulated revision log spans
// one year.
func GenerateWorld(d Domain, seedEntities int, seed uint64) (*World, error) {
	p := synth.DefaultParams(d, seedEntities)
	p.Seed = seed
	return synth.Generate(p)
}

// GenerateWorldSpanning is GenerateWorld over a custom revision span:
// multi-year spans let periodic scenarios (transfer windows, award
// seasons) recur, which the periodicity detector needs.
func GenerateWorldSpanning(d Domain, seedEntities int, seed uint64, span Window) (*World, error) {
	p := synth.DefaultParams(d, seedEntities)
	p.Seed = seed
	p.Span = span
	return synth.Generate(p)
}
