package wiclean

import (
	"strings"
	"testing"
)

// TestEndToEndPipeline drives the whole public API: generate a world, mine
// patterns, detect errors, ask the assistant, find periodic patterns.
func TestEndToEndPipeline(t *testing.T) {
	world, err := GenerateWorld(USPoliticians(), 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 1
	sys := NewSystem(world.History, cfg)

	// Mine over the world's seed sample (the full entities(t) population
	// also contains the inactive former-senator pool, which dilutes
	// frequencies — exactly why the paper samples recently edited seeds).
	outcome, err := sys.Mine(world.Seeds, "Senator", world.Span)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome.Discovered) == 0 {
		t.Fatal("no patterns discovered")
	}
	// The committee-assignment pattern must be among the discoveries.
	foundCommittee := false
	for _, d := range outcome.Discovered {
		for _, a := range d.Pattern.Actions {
			if a.Label == "member_of" {
				foundCommittee = true
			}
		}
	}
	if !foundCommittee {
		t.Errorf("committee pattern not discovered among %d", len(outcome.Discovered))
	}

	reports, err := sys.DetectErrors(1)
	if err != nil {
		t.Fatal(err)
	}
	partials := 0
	for _, r := range reports {
		partials += len(r.Partials)
	}
	if partials == 0 {
		t.Error("no potential errors signaled despite injected ones")
	}

	as, err := sys.Assistant()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a live edit matching a discovered pattern's first action.
	var live Action
	var liveFound bool
	for _, d := range outcome.Discovered {
		a := d.Pattern.Actions[0]
		// Find concrete entities of the right types.
		srcs := world.Reg.EntitiesOf(d.Pattern.Vars[a.Src])
		dsts := world.Reg.EntitiesOf(d.Pattern.Vars[a.Dst])
		if len(srcs) > 0 && len(dsts) > 0 {
			live = Action{Op: a.Op, Edge: Edge{Src: srcs[0], Label: a.Label, Dst: dsts[0]}, T: world.Span.Start + Week}
			liveFound = true
			break
		}
	}
	if !liveFound {
		t.Fatal("could not build a live edit")
	}
	advices := as.Suggest(live, live.T)
	if len(advices) == 0 {
		t.Error("assistant gave no advice for a pattern-matching edit")
	}
}

func TestMineSeedEntityResolvesType(t *testing.T) {
	world, err := GenerateWorld(USPoliticians(), 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.SkipRelative = true
	sys := NewSystem(world.History, cfg)
	name := world.Reg.Name(world.Seeds[0])
	if _, err := sys.MineSeedEntity(name, world.Span); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.MineSeedEntity("Nobody", world.Span); err == nil {
		t.Error("unknown entity should error")
	}
}

func TestSystemOrderingGuards(t *testing.T) {
	world, err := GenerateWorld(Soccer(), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(world.History, DefaultConfig())
	if _, err := sys.DetectErrors(1); err == nil {
		t.Error("DetectErrors before Mine should error")
	}
	if _, err := sys.Assistant(); err == nil {
		t.Error("Assistant before Mine should error")
	}
	if _, err := sys.PeriodicPatterns(0.25); err == nil {
		t.Error("PeriodicPatterns before Mine should error")
	}
	if _, err := sys.MineType("Martian", world.Span); err == nil {
		t.Error("unknown type should error")
	}
}

func TestManualHistoryConstruction(t *testing.T) {
	// Build a tiny world by hand through the public API only.
	tax := NewTaxonomy()
	tax.AddChain("Person", "Athlete", "FootballPlayer")
	tax.AddChain("Organisation", "FootballClub")
	reg := NewRegistry(tax)
	var players, clubs []EntityID
	for i := 0; i < 10; i++ {
		players = append(players, reg.MustAdd("P"+string(rune('A'+i)), "FootballPlayer"))
		clubs = append(clubs, reg.MustAdd("C"+string(rune('A'+i)), "FootballClub"))
	}
	h := NewHistory(reg)
	for i := 0; i < 8; i++ {
		h.AddActions(
			Action{Op: Add, Edge: Edge{Src: players[i], Label: "current_club", Dst: clubs[i]}, T: Time(10 + i)},
			Action{Op: Add, Edge: Edge{Src: clubs[i], Label: "squad", Dst: players[i]}, T: Time(20 + i)},
		)
	}
	res, err := Mine(h, players, "FootballPlayer", Window{Start: 0, End: 100}, PM(0.7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	if !strings.Contains(res.Patterns[0].Pattern.String(), "current_club") {
		t.Errorf("unexpected top pattern %v", res.Patterns[0])
	}

	// Detect a deliberately partial edit through the detector.
	h.AddActions(Action{Op: Add, Edge: Edge{Src: players[8], Label: "current_club", Dst: clubs[8]}, T: 50})
	rep, err := NewDetector(h).FindPartials(res.Patterns[0].Pattern, Window{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Partials) == 0 {
		t.Error("partial edit not flagged")
	}
}

func TestPeriodicPatternsOverTwoSeasons(t *testing.T) {
	// Two yearly transfer bursts: the pattern must be reported periodic.
	tax := NewTaxonomy()
	tax.AddChain("Person", "Athlete", "FootballPlayer")
	tax.AddChain("Organisation", "FootballClub")
	reg := NewRegistry(tax)
	var players, clubs []EntityID
	for i := 0; i < 10; i++ {
		players = append(players, reg.MustAdd("P"+string(rune('A'+i)), "FootballPlayer"))
		clubs = append(clubs, reg.MustAdd("C"+string(rune('A'+i)), "FootballClub"))
	}
	h := NewHistory(reg)
	span := Window{Start: 0, End: 2 * Year}
	for _, year := range []Time{0, Year} {
		for i := 0; i < 8; i++ {
			base := year + 4*Week + Time(i)*Hour
			h.AddActions(
				Action{Op: Add, Edge: Edge{Src: players[i], Label: "current_club", Dst: clubs[i]}, T: base},
				Action{Op: Add, Edge: Edge{Src: clubs[i], Label: "squad", Dst: players[i]}, T: base + 1},
			)
		}
	}
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.SkipRelative = true
	cfg.Mining.MaxAbstraction = 0
	sys := NewSystem(h, cfg)
	if _, err := sys.Mine(players, "FootballPlayer", span); err != nil {
		t.Fatal(err)
	}
	periodic, err := sys.PeriodicPatterns(0.35)
	if err != nil {
		t.Fatal(err)
	}
	if len(periodic) == 0 {
		t.Fatal("yearly pattern not reported periodic")
	}
	p := periodic[0]
	if p.Period < Year-8*Week || p.Period > Year+8*Week {
		t.Errorf("period = %dd, want ~1 year", p.Period/Day)
	}
}

// TestPublicSurface exercises the remaining public wrappers: domains, the
// SQL database, model persistence, and constant specialization.
func TestPublicSurface(t *testing.T) {
	if _, err := DomainByName("cinematography"); err != nil {
		t.Fatal(err)
	}
	if _, err := DomainByName("curling"); err == nil {
		t.Fatal("unknown domain should error")
	}
	if Cinematography().SeedType != "Actor" || USPoliticians().SeedType != "Senator" {
		t.Fatal("domain seed types")
	}

	world, err := GenerateWorld(USPoliticians(), 80, 1)
	if err != nil {
		t.Fatal(err)
	}

	// SQL over the revision log.
	db := NewDatabase(world.History, world.Span)
	res, err := db.Query("SELECT COUNT(DISTINCT src) FROM reduced")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Row(0)[0] <= 0 {
		t.Fatal("no sources in the log")
	}

	// Mine once, persist the model, reload it into a fresh system.
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.SkipRelative = true
	sys := NewSystem(world.History, cfg)
	o, err := sys.Mine(world.Seeds, "Senator", world.Span)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteModel(&buf, o.Model()); err != nil {
		t.Fatal(err)
	}
	m, err := ReadModel(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewSystem(world.History, cfg)
	fresh.UseModel(m)
	reports, err := fresh.DetectErrors(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("model-driven detection produced no reports")
	}

	// Constant specialization runs over per-window results.
	for _, wr := range o.Windows {
		_ = SpecializeConstants(wr.Result, world.Reg, 0.8)
	}
}
