module wiclean

go 1.22
